"""Incremental top-alignment sessions.

"Some tens of top alignments are required; more top alignments increase
Repro's sensitivity" (§2.2) — so a common workflow is: compute a few,
inspect, ask for more.  Restarting :func:`find_top_alignments` from
scratch would repay the full first pass every time.
:class:`TopAlignmentSession` keeps the live queue, override triangle and
bottom-row store between requests, so asking for ``k`` more alignments
costs only the incremental realignments the paper's queue heuristic
would have performed anyway.
"""

from __future__ import annotations

from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties
from ..sequences.sequence import Sequence
from .result import RunStats, TopAlignment
from .tasks import TaskQueue
from .topalign import TopAlignmentState

__all__ = ["TopAlignmentSession"]


class TopAlignmentSession:
    """A resumable Figure 5 loop.

    Usage::

        session = TopAlignmentSession(seq, exchange, gaps)
        first_ten = session.extend(10)
        more = session.extend(5)          # continues, no recomputation
        all_so_far = session.alignments   # 15 alignments
    """

    def __init__(
        self,
        sequence: Sequence,
        exchange: ExchangeMatrix,
        gaps: GapPenalties = GapPenalties(),
        *,
        engine: str = "vector",
        triangle: str = "dense",
        min_score: float = 0.0,
    ) -> None:
        self._state = TopAlignmentState(
            sequence, exchange, gaps, engine=engine, triangle=triangle
        )
        self._queue = TaskQueue()
        for task in self._state.make_tasks():
            self._queue.insert(task)
        self.min_score = min_score
        self._exhausted = False

    @classmethod
    def from_state(
        cls, state: TopAlignmentState, *, min_score: float = 0.0
    ) -> "TopAlignmentSession":
        """Wrap an existing (e.g. checkpoint-restored) search state.

        The fresh task queue starts with every split's score stale, but
        stale scores are upper bounds under the restored triangle, so
        :meth:`extend` continues exactly where the original run stopped
        — this is what lets a service worker resume a killed job from
        its last checkpoint instead of restarting it.
        """
        session = cls.__new__(cls)
        session._state = state
        session._queue = TaskQueue()
        for task in state.make_tasks():
            session._queue.insert(task)
        session.min_score = min_score
        session._exhausted = False
        return session

    # -- inspection --------------------------------------------------------

    @property
    def alignments(self) -> list[TopAlignment]:
        """Every top alignment accepted so far, in acceptance order."""
        return list(self._state.found)

    @property
    def stats(self) -> RunStats:
        """Cumulative run statistics."""
        return self._state.stats

    @property
    def state(self) -> TopAlignmentState:
        """The underlying search state (triangle, bottom rows, ...)."""
        return self._state

    @property
    def exhausted(self) -> bool:
        """True when no further alignment can beat ``min_score``."""
        return self._exhausted

    def __len__(self) -> int:
        return len(self._state.found)

    # -- the resumable loop --------------------------------------------------

    def extend(self, k: int) -> list[TopAlignment]:
        """Accept up to ``k`` *additional* top alignments; returns the new ones.

        Returns fewer (possibly zero) when the sequence is exhausted.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if self._exhausted:
            return []
        state = self._state
        target = state.n_found + k
        while state.n_found < target and self._queue:
            task = self._queue.pop_highest()
            if task.score <= self.min_score:
                self._queue.insert(task)
                self._exhausted = True
                break
            if task.is_current(state.n_found):
                state.accept_task(task)
            else:
                state.align_task(task)
            self._queue.insert(task)
        if not self._queue:
            self._exhausted = True
        return list(state.found[target - k :])

    def extend_until(self, min_score: float, *, max_alignments: int = 10_000) -> list[TopAlignment]:
        """Accept alignments while they score above ``min_score``.

        A convenience for "give me everything meaningful"; bounded by
        ``max_alignments`` as a safety stop.
        """
        start = len(self)
        saved = self.min_score
        self.min_score = max(self.min_score, min_score)
        try:
            while not self._exhausted and len(self) - start < max_alignments:
                got = self.extend(1)
                if not got:
                    break
        finally:
            self.min_score = saved
        return list(self._state.found[start:])
