"""The old (1993-style) top-alignment search — the Table 1 baseline.

The original Repro implementation lacked the two ideas that make the
new algorithm O(n³):

* no best-first queue with stale-score upper bounds — after every
  accepted top alignment it realigns **all** ``m - 1`` split pairs
  again, and
* no cached first-pass bottom rows — shadow alignments are rejected by
  the expensive variant sketched in Appendix A: every split is aligned
  **twice** per round, with and without the override triangle, and only
  endpoints scoring equally in both are valid.

One round therefore costs ``2 (m-1)`` alignments of Θ(r (m-r)) cells —
Θ(m³) — and finding ``k`` top alignments costs Θ(k m³): the O(n⁴)
behaviour of Table 1 (the paper's k grows with sequence length).

The *output* is identical to :func:`repro.core.topalign.find_top_alignments`
— the paper's central equivalence claim — because "aligned without an
override triangle" is exactly the quantity the new algorithm caches.
"""

from __future__ import annotations

import time

import numpy as np

from ..align.matrix import full_matrix
from ..align.traceback import traceback
from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties
from ..sequences.sequence import Sequence
from .override import DenseOverrideTriangle
from .result import RunStats, TopAlignment

__all__ = ["old_find_top_alignments"]


def old_find_top_alignments(
    sequence: Sequence,
    k: int,
    exchange: ExchangeMatrix,
    gaps: GapPenalties = GapPenalties(),
    *,
    engine: str = "vector",
    min_score: float = 0.0,
) -> tuple[list[TopAlignment], RunStats]:
    """Old-algorithm equivalent of :func:`find_top_alignments`.

    Same signature and same results; quartic work.  ``engine`` selects
    the per-alignment kernel so that Table 1 compares algorithms, not
    instruction tiers.
    """
    from ..align.base import AlignmentProblem, get_engine

    if k < 1:
        raise ValueError("k must be >= 1")
    if len(sequence) < 2:
        raise ValueError("sequence must have at least 2 residues")

    m = len(sequence)
    codes = sequence.codes
    eng = get_engine(engine)
    triangle = DenseOverrideTriangle(m)
    found: list[TopAlignment] = []
    stats = RunStats()
    stats.realignments_per_top.append(0)

    def engine_row(problem: AlignmentProblem) -> np.ndarray:
        start = time.perf_counter()
        row = eng.last_row(problem)
        stats.engine_seconds += time.perf_counter() - start
        stats.alignments += 1
        stats.cells += problem.cells
        return row

    while len(found) < k:
        best_score = -np.inf
        best_r = -1
        best_end = -1
        for r in range(1, m):
            plain = AlignmentProblem(codes[:r], codes[r:], exchange, gaps)
            overridden = AlignmentProblem(
                codes[:r], codes[r:], exchange, gaps, triangle.view_for_split(r)
            )
            row_plain = engine_row(plain)
            if triangle.version == 0:
                row_over = row_plain
            else:
                row_over = engine_row(overridden)
                stats.realignments += 1
                stats.realignments_per_top[-1] += 1
            valid = row_over == row_plain
            candidates = np.where(valid, row_over, -np.inf)
            end_x = int(np.argmax(candidates))
            score = float(candidates[end_x])
            if score > best_score:
                best_score, best_r, best_end = score, r, end_x
        if best_score <= min_score:
            break

        problem = AlignmentProblem(
            codes[:best_r],
            codes[best_r:],
            exchange,
            gaps,
            triangle.view_for_split(best_r),
        )
        matrix = full_matrix(problem)
        stats.tracebacks += 1
        path = traceback(problem, matrix, problem.rows, best_end)
        pairs = tuple((step.y, best_r + step.x) for step in path.pairs)
        alignment = TopAlignment(
            index=len(found), r=best_r, score=best_score, pairs=pairs
        )
        triangle.mark(pairs)
        found.append(alignment)
        stats.realignments_per_top.append(0)

    return found, stats
