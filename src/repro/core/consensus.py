"""Repeat-unit selection and consensus building (§6 future work).

The paper's discussion section sketches what the delineation phase
still needs for long sequences: "extra filtering to select the 'best'
repeat (in a sequence AACAACAACAAC, is it better to delineate two
occurrences of AACAAC, four occurrences of AAC, or eight occurrences of
A?), and more tuning to find the 'right' starting positions of tandem
repeats".  This module implements both:

* :func:`select_unit_length` scores every candidate period of a tandem
  region by ``(mean block identity)^2 x (1 - 1/copies)`` — identity
  rewards a period that really is the repeat unit, the copy factor
  penalises trivially long periods (few copies), and sub-periods that
  do not actually repeat (like ``A`` inside ``AAC``) lose on identity.
  Identity is squared so that a *perfect* longer unit beats a merely
  frequent shorter residue (``TAAA`` x3 should be three TAAA copies,
  not twelve noisy ``A``'s).  For ``AACAACAACAAC`` this selects 3, the
  paper's intended answer.
* :func:`consensus_of_copies` derives a majority consensus from
  delineated copies.
* :func:`phase_tandem` tunes the starting offset of a tandem region so
  copy boundaries land where the copies agree best.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sequences.sequence import Sequence

__all__ = [
    "UnitChoice",
    "block_identity",
    "select_unit_length",
    "consensus_of_copies",
    "phase_tandem",
]


@dataclass(frozen=True)
class UnitChoice:
    """One scored candidate period of a tandem region."""

    unit_length: int
    copies: int
    identity: float
    score: float


def _blocks(codes: np.ndarray, unit: int) -> np.ndarray:
    """Full blocks of length ``unit`` as a (copies, unit) array."""
    copies = codes.size // unit
    return codes[: copies * unit].reshape(copies, unit)


def block_identity(codes: np.ndarray, unit: int) -> float:
    """Mean per-column agreement with the majority residue.

    1.0 means every block is identical; random residues over an
    alphabet of size ``s`` approach ``1/s``.
    """
    blocks = _blocks(codes, unit)
    if blocks.shape[0] < 1:
        return 0.0
    agree = 0
    for col in range(unit):
        column = blocks[:, col]
        counts = np.bincount(column)
        agree += int(counts.max())
    return agree / blocks.size


def select_unit_length(
    region: Sequence | np.ndarray,
    candidates: list[int] | None = None,
) -> UnitChoice:
    """Choose the best repeat-unit length for a tandem region.

    ``candidates`` defaults to every length from 1 to half the region.
    The winning period maximises ``identity**2 * (1 - 1/copies)``; ties
    go to the shortest unit (maximal decomposition at equal quality).
    """
    codes = region.codes if isinstance(region, Sequence) else np.asarray(region)
    if codes.size < 2:
        raise ValueError("region must have at least 2 residues")
    if candidates is None:
        candidates = list(range(1, codes.size // 2 + 1))
    if not candidates:
        raise ValueError("no candidate unit lengths")
    best: UnitChoice | None = None
    for unit in sorted(set(candidates)):
        if not 1 <= unit <= codes.size:
            raise ValueError(f"candidate unit {unit} outside 1..{codes.size}")
        copies = codes.size // unit
        if copies < 1:
            continue
        identity = block_identity(codes, unit)
        score = identity * identity * (1.0 - 1.0 / copies) if copies > 1 else 0.0
        choice = UnitChoice(unit, copies, identity, score)
        if best is None or choice.score > best.score:
            best = choice
    assert best is not None
    return best


def consensus_of_copies(
    sequence: Sequence, copies: list[tuple[int, int]]
) -> Sequence:
    """Majority consensus of delineated copies (1-based inclusive spans).

    Copies are anchored at their starts; the consensus length is the
    median copy length, and each column takes the most common residue
    among the copies that reach it (ties: smallest code, deterministic).
    """
    if not copies:
        raise ValueError("need at least one copy")
    arrays = []
    for start, end in copies:
        if not 1 <= start <= end <= len(sequence):
            raise ValueError(f"copy ({start}, {end}) outside the sequence")
        arrays.append(sequence.codes[start - 1 : end])
    length = int(np.median([a.size for a in arrays]))
    out = np.zeros(length, dtype=np.int8)
    for col in range(length):
        column = [int(a[col]) for a in arrays if a.size > col]
        counts = np.bincount(column)
        out[col] = int(np.argmax(counts))
    return Sequence(out, sequence.alphabet, id="consensus")


def phase_tandem(
    region: Sequence | np.ndarray, unit: int
) -> tuple[int, float]:
    """Best starting phase of a tandem region for a given unit length.

    Returns ``(offset, identity)`` where ``offset`` in ``0..unit-1`` is
    the rotation at which the block decomposition agrees best — the
    §6 "right starting positions" tuning.  Ties go to offset 0.
    """
    codes = region.codes if isinstance(region, Sequence) else np.asarray(region)
    if not 1 <= unit <= codes.size // 2:
        raise ValueError("unit must allow at least two full copies")
    best_offset, best_identity = 0, -1.0
    for offset in range(unit):
        tail = codes[offset:]
        if tail.size < 2 * unit:
            continue
        identity = block_identity(tail, unit)
        if identity > best_identity:
            best_offset, best_identity = offset, identity
    return best_offset, best_identity
