"""The override triangle (§3).

A triangular boolean structure over global residue-pair coordinates
``(i, j)`` with ``1 <= i < j <= m``: a marked pair means "this matched
pair already belongs to an accepted top alignment", and every split
matrix must force the corresponding cell to zero when realigning.

Two implementations share one interface:

* :class:`DenseOverrideTriangle` — an ``(m+1, m+1)`` boolean array.
  Row masks are O(1) slices; memory is O(m²) (the paper's default —
  "the triangle is sparse, it can be compressed if memory usage is an
  issue").
* :class:`SparseOverrideTriangle` — per-row sorted column sets; memory
  proportional to the number of marked pairs (O(k·n)), the compressed
  variant the paper sketches.

Both carry a ``version`` counter equal to the number of top alignments
applied — the ``AlignedWithTopNum`` the task queue compares against.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator

import numpy as np

__all__ = [
    "OverrideTriangle",
    "DenseOverrideTriangle",
    "SparseOverrideTriangle",
    "SplitOverrideView",
]


class OverrideTriangle(ABC):
    """Interface of both triangle implementations."""

    def __init__(self, m: int) -> None:
        if m < 1:
            raise ValueError("sequence length must be positive")
        self.m = m
        self.version = 0

    @abstractmethod
    def mark(self, pairs: Iterable[tuple[int, int]]) -> None:
        """Mark matched pairs of a newly accepted top alignment.

        Increments :attr:`version` by one (one call per acceptance).
        """

    @abstractmethod
    def contains(self, i: int, j: int) -> bool:
        """Whether the pair ``(i, j)`` is marked."""

    @abstractmethod
    def row_mask(self, i: int, col_lo: int, col_hi: int) -> np.ndarray | None:
        """Mask over global columns ``col_lo..col_hi`` (inclusive) of row ``i``.

        Returns ``None`` when nothing in the range is marked.
        """

    @abstractmethod
    def __iter__(self) -> Iterator[tuple[int, int]]:
        """Iterate all marked pairs."""

    @property
    @abstractmethod
    def marked_count(self) -> int:
        """Total number of marked pairs."""

    def view_for_split(self, r: int) -> "SplitOverrideView":
        """Adapter exposing this triangle to engines for split ``r``."""
        return SplitOverrideView(self, r)

    def _check(self, pairs: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
        checked = []
        for i, j in pairs:
            if not (1 <= i < j <= self.m):
                raise ValueError(f"pair ({i}, {j}) outside triangle 1 <= i < j <= {self.m}")
            checked.append((i, j))
        return checked


class DenseOverrideTriangle(OverrideTriangle):
    """Boolean-matrix triangle with O(1) row-mask slicing."""

    def __init__(self, m: int) -> None:
        super().__init__(m)
        self._flags = np.zeros((m + 1, m + 1), dtype=bool)
        self._row_counts = np.zeros(m + 1, dtype=np.int64)

    def mark(self, pairs: Iterable[tuple[int, int]]) -> None:
        for i, j in self._check(pairs):
            if not self._flags[i, j]:
                self._flags[i, j] = True
                self._row_counts[i] += 1
        self.version += 1

    def contains(self, i: int, j: int) -> bool:
        return bool(self._flags[i, j])

    def row_mask(self, i: int, col_lo: int, col_hi: int) -> np.ndarray | None:
        if self._row_counts[i] == 0:
            return None
        mask = self._flags[i, col_lo : col_hi + 1]
        return mask if mask.any() else None

    def __iter__(self) -> Iterator[tuple[int, int]]:
        for i, j in zip(*np.nonzero(self._flags)):
            yield int(i), int(j)

    @property
    def marked_count(self) -> int:
        return int(self._row_counts.sum())


class SparseOverrideTriangle(OverrideTriangle):
    """Per-row column sets — O(marked) memory, the compressed variant."""

    def __init__(self, m: int) -> None:
        super().__init__(m)
        self._rows: dict[int, set[int]] = {}

    def mark(self, pairs: Iterable[tuple[int, int]]) -> None:
        for i, j in self._check(pairs):
            self._rows.setdefault(i, set()).add(j)
        self.version += 1

    def contains(self, i: int, j: int) -> bool:
        return j in self._rows.get(i, ())

    def row_mask(self, i: int, col_lo: int, col_hi: int) -> np.ndarray | None:
        cols = self._rows.get(i)
        if not cols:
            return None
        hits = [j for j in cols if col_lo <= j <= col_hi]
        if not hits:
            return None
        mask = np.zeros(col_hi - col_lo + 1, dtype=bool)
        mask[np.asarray(hits) - col_lo] = True
        return mask

    def __iter__(self) -> Iterator[tuple[int, int]]:
        for i in sorted(self._rows):
            for j in sorted(self._rows[i]):
                yield i, j

    @property
    def marked_count(self) -> int:
        return sum(len(cols) for cols in self._rows.values())


class SplitOverrideView:
    """Engine-facing view of the triangle for one split matrix.

    Split ``r`` aligns prefix positions ``1..r`` (matrix rows) against
    suffix positions ``r+1..m`` (matrix columns), so local cell
    ``(y, x)`` is global pair ``(y, r + x)``.
    """

    __slots__ = ("_triangle", "_r", "_m")

    def __init__(self, triangle: OverrideTriangle, r: int) -> None:
        if not 1 <= r < triangle.m:
            raise ValueError(f"split r={r} outside 1..{triangle.m - 1}")
        self._triangle = triangle
        self._r = r
        self._m = triangle.m

    def row_mask(self, y: int) -> np.ndarray | None:
        return self._triangle.row_mask(y, self._r + 1, self._m)
