"""Checkpointing long searches.

Titin-scale runs take hours even on the cluster; a crash should not
repay the first pass.  A checkpoint captures the durable products of a
:class:`~repro.core.topalign.TopAlignmentState` — the accepted
alignments (hence the override triangle) and the first-pass bottom rows
— in a single ``.npz`` file.  Restoring rebuilds a state whose
continuation is exactly the continuation of the original run, which the
tests verify.

Scores/rows are stored losslessly (float64); the scoring model itself
is *not* serialised — the caller must restore with the same sequence,
exchange matrix and gap penalties, and a fingerprint check catches
mismatches loudly rather than corrupting results silently.
"""

from __future__ import annotations

import os

import numpy as np

from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties
from ..sequences.sequence import Sequence
from .result import TopAlignment
from .topalign import TopAlignmentState

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def _fingerprint(state_or_args) -> np.ndarray:
    sequence, exchange, gaps = state_or_args
    payload = np.concatenate(
        [
            sequence.codes.astype(np.float64),
            exchange.scores.ravel(),
            np.array([gaps.open_, gaps.extend], dtype=np.float64),
        ]
    )
    return np.array(
        [payload.size, float(payload.sum()), float((payload**2).sum())]
    )


def save_checkpoint(state: TopAlignmentState, path: str | os.PathLike) -> None:
    """Write ``state``'s durable products to ``path`` (.npz).

    The write is atomic (temp file + ``os.replace``): service workers
    checkpoint after every accepted chunk and may be SIGKILLed at any
    instant, and a torn write must never replace the last good
    checkpoint.  Unlike ``np.savez``'s path form, ``path`` is used
    verbatim — no ``.npz`` suffix is appended.
    """
    arrays: dict[str, np.ndarray] = {
        "format": np.array([_FORMAT_VERSION]),
        "codes": state.codes,
        "fingerprint": _fingerprint((state.sequence, state.exchange, state.gaps)),
        "alignment_meta": np.array(
            [[a.index, a.r] for a in state.found], dtype=np.int64
        ).reshape(-1, 2),
        "alignment_scores": np.array([a.score for a in state.found]),
    }
    for a in state.found:
        arrays[f"pairs_{a.index}"] = np.array(a.pairs, dtype=np.int64)
    stored = sorted(r for r in range(1, state.m) if r in state.bottom_rows)
    arrays["stored_rows"] = np.array(stored, dtype=np.int64)
    for r in stored:
        arrays[f"row_{r}"] = np.asarray(state.bottom_rows.get(r))
    target = os.fspath(path)
    tmp = f"{target}.{os.getpid()}.tmp"
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp, target)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def load_checkpoint(
    path: str | os.PathLike,
    sequence: Sequence,
    exchange: ExchangeMatrix,
    gaps: GapPenalties = GapPenalties(),
    *,
    engine: str = "vector",
    triangle: str = "dense",
) -> TopAlignmentState:
    """Rebuild a state ready to continue exactly where it stopped."""
    data = np.load(os.fspath(path))
    if int(data["format"][0]) != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format {int(data['format'][0])}"
        )
    if not np.array_equal(data["codes"], sequence.codes):
        raise ValueError("checkpoint was written for a different sequence")
    expected = _fingerprint((sequence, exchange, gaps))
    if not np.allclose(data["fingerprint"], expected):
        raise ValueError(
            "checkpoint was written under a different scoring model"
        )

    state = TopAlignmentState(
        sequence, exchange, gaps, engine=engine, triangle=triangle
    )
    meta = data["alignment_meta"].reshape(-1, 2)
    scores = data["alignment_scores"]
    for (index, r), score in zip(meta, scores):
        # Plain-int pairs: a restored alignment must be indistinguishable
        # from a freshly computed one (which uses Python ints), down to
        # JSON serialisability of downstream result payloads.
        pairs = tuple(
            (int(i), int(j)) for i, j in data[f"pairs_{int(index)}"]
        )
        alignment = TopAlignment(
            index=int(index), r=int(r), score=float(score), pairs=pairs
        )
        state.triangle.mark(pairs)
        state.found.append(alignment)
        state.stats.realignments_per_top.append(0)
    for r in data["stored_rows"]:
        state.bottom_rows.put(int(r), data[f"row_{int(r)}"])
    return state
