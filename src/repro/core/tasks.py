"""Tasks and the best-first task queue (Figure 5).

One task per split point ``r``.  A task's ``score`` is either an upper
bound (the score of its most recent alignment, possibly computed under
an *older* override triangle) or the true current score (when
``aligned_with == <current number of top alignments>``).  Because a
newer triangle only overrides *more* entries, realignment can never
raise a score — stale scores are valid upper bounds, which is exactly
what makes best-first selection safe and prunes 90–97 % of
realignments (§3).

The queue is a binary max-heap keyed by ``(score, -r)`` so that ties
resolve to the smallest split point, keeping the whole algorithm
deterministic (and the old/new equivalence testable).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = ["Task", "TaskQueue", "NEVER_ALIGNED"]

#: ``AlignedWithTopNum`` of a task that has never been aligned (line 5
#: of Figure 5 uses -1).
NEVER_ALIGNED = -1


@dataclass
class Task:
    """One split-pair work item.

    Attributes
    ----------
    r:
        The split point: prefix ``S[1:r]`` vs suffix ``S[r+1:m]``.
    score:
        Upper bound or exact score (see module docstring); starts at
        ``+inf`` so every task is aligned once before any acceptance.
    aligned_with:
        Override-triangle version of the most recent alignment
        (``NEVER_ALIGNED`` initially).
    """

    r: int
    score: float = math.inf
    aligned_with: int = NEVER_ALIGNED

    def is_current(self, n_found: int) -> bool:
        """Whether the score was computed under the current triangle."""
        return self.aligned_with == n_found


@dataclass(order=True)
class _Entry:
    sort_key: tuple[float, int] = field(compare=True)
    task: Task = field(compare=False)


class TaskQueue:
    """Max-heap of tasks ordered by score (ties: smallest ``r`` first).

    Mirrors Figure 5's ``InsertTask`` / ``GetTaskWithHighestScore``: a
    task is either in the queue or checked out, never both, so no lazy
    deletion is needed.

    An optional ``guard`` callable is invoked on every insert — the
    invariant checker (:mod:`repro.analysis.invariants`) uses it to
    validate tasks as they enter the queue when
    ``REPRO_CHECK_INVARIANTS`` is set.
    """

    def __init__(self, guard: Callable[[Task], None] | None = None) -> None:
        self._heap: list[_Entry] = []
        self._guard = guard

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def tasks(self) -> Iterator[Task]:
        """Iterate the queued tasks in unspecified order (debug/checks)."""
        for entry in self._heap:
            yield entry.task

    def insert(self, task: Task) -> None:
        """(Re)insert a task at the position its score dictates."""
        if self._guard is not None:
            self._guard(task)
        heapq.heappush(self._heap, _Entry((-task.score, task.r), task))

    def pop_highest(self) -> Task:
        """Remove and return the task with the highest score."""
        if not self._heap:
            raise IndexError("pop from empty task queue")
        return heapq.heappop(self._heap).task

    def peek_score(self) -> float:
        """Score of the current head without removing it."""
        if not self._heap:
            raise IndexError("peek on empty task queue")
        return -self._heap[0].sort_key[0]

    def pop_highest_excluding(self, taken: set[int]) -> Task | None:
        """Highest-score task whose ``r`` is not in ``taken``.

        Used by the speculative parallel schedulers (§4.2): a thread
        skips tasks already checked out by others.  Skipped entries are
        pushed back, preserving order.  Returns ``None`` if every
        remaining task is taken.
        """
        skipped: list[_Entry] = []
        result: Task | None = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.task.r in taken:
                skipped.append(entry)
            else:
                result = entry.task
                break
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        return result
