"""The bottom-row store (Appendix A).

After a split's *first* alignment (empty override triangle) its bottom
row is cached.  On every realignment the fresh bottom row is compared
against the cached one: cells whose value changed were rerouted around
an accepted alignment ("shadow alignments") and are invalid endpoints;
the realignment's score is the maximum over the *unchanged* cells.

Storing all bottom rows costs ``m (m-1) / 2`` values — "the largest
data structure that we use" — which is why the distributed
implementation keeps it on the master and lets slaves cache replicas
(§4.3); :class:`BottomRowStore` is that master-side structure.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BottomRowStore"]


class BottomRowStore:
    """Triangular cache of first-alignment bottom rows, keyed by split r.

    Rows are stored as float64 arrays of length ``m - r + 1`` (index 0
    is the zero boundary column, matching engine output).
    """

    def __init__(self, m: int) -> None:
        if m < 2:
            raise ValueError("sequence length must be at least 2")
        self.m = m
        self._rows: dict[int, np.ndarray] = {}

    def __contains__(self, r: int) -> bool:
        return r in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def put(self, r: int, row: np.ndarray) -> None:
        """Cache the first-alignment bottom row of split ``r`` (write-once)."""
        if not 1 <= r < self.m:
            raise ValueError(f"split r={r} outside 1..{self.m - 1}")
        if r in self._rows:
            raise ValueError(f"bottom row for split r={r} already stored")
        expected = self.m - r + 1
        if row.shape != (expected,):
            raise ValueError(
                f"bottom row for split r={r} must have length {expected}, "
                f"got {row.shape}"
            )
        frozen = np.array(row, dtype=np.float64, copy=True)
        frozen.setflags(write=False)
        self._rows[r] = frozen

    def get(self, r: int) -> np.ndarray:
        """The cached row for split ``r`` (raises KeyError if absent)."""
        return self._rows[r]

    def valid_mask(self, r: int, fresh_row: np.ndarray) -> np.ndarray:
        """Boolean mask of valid endpoints: fresh value == original value.

        The boundary cell (index 0) is always equal (both zero), which
        is harmless: its value 0 never wins the score maximum.
        """
        original = self._rows[r]
        if fresh_row.shape != original.shape:
            raise ValueError(
                f"row length mismatch for split r={r}: "
                f"{fresh_row.shape} vs {original.shape}"
            )
        return fresh_row == original

    def score_of(self, r: int, fresh_row: np.ndarray) -> float:
        """Best valid (non-shadow) score of a realignment's bottom row."""
        mask = self.valid_mask(r, fresh_row)
        if not mask.any():
            return 0.0
        return float(fresh_row[mask].max())

    @property
    def nbytes(self) -> int:
        """Total memory of the cached rows (the paper's 1.5 GB concern)."""
        return sum(row.nbytes for row in self._rows.values())
