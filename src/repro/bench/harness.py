"""Experiment harness: canonical workloads, timing, table rendering.

Each function here regenerates one of the paper's evaluation artifacts
(Table 1, Table 2, Figure 8, and the §3/§5 in-text claims) at a scale a
CPython host can run, and returns structured rows so that both the
pytest benchmarks and the example scripts can render or assert on them.
Absolute numbers are host-dependent; the *shape* columns (ratios,
monotonicity, who-wins) are what EXPERIMENTS.md compares to the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence as Seq

from ..core.oldalgo import old_find_top_alignments
from ..core.topalign import find_top_alignments
from ..scoring.blosum import blosum62
from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties
from ..sequences.sequence import Sequence
from ..sequences.workloads import pseudo_titin
from ..simulate.cluster import AlignmentOracle, ClusterConfig, ClusterSimulator
from ..simulate.machine import PENTIUM3, MachineModel

__all__ = [
    "BenchTable",
    "default_scoring",
    "bench_sequence",
    "table1_rows",
    "table2_rows",
    "figure8_series",
    "realignment_rows",
    "batched_report",
    "batched_rows",
    "index_report",
    "index_rows",
    "pruning_report",
    "pruning_rows",
]


@dataclass
class BenchTable:
    """A rendered experiment: header, rows, free-text notes."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """Fixed-width text rendering, like the paper's tables."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.3g}"
            return str(value)

        table = [self.columns] + [[fmt(v) for v in row] for row in self.rows]
        widths = [max(len(r[c]) for r in table) for c in range(len(self.columns))]
        lines = [self.title, "-" * len(self.title)]
        for idx, row in enumerate(table):
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
            if idx == 0:
                lines.append("  ".join("-" * w for w in widths))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def default_scoring() -> tuple[ExchangeMatrix, GapPenalties]:
    """The scoring model every benchmark uses (BLOSUM62, open 8 / extend 1)."""
    return blosum62(), GapPenalties(8, 1)


def bench_sequence(length: int, *, seed: int = 1912) -> Sequence:
    """The canonical benchmark input: a pseudo-titin prefix."""
    return pseudo_titin(length, seed=seed)


def _timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


# -- Table 1 -----------------------------------------------------------------


def table1_rows(
    lengths: Seq[int] = (200, 300, 400, 500),
    k: int = 10,
    *,
    engine: str = "vector",
    seed: int = 1912,
) -> BenchTable:
    """Old vs new sequential runtimes over sequence length (Table 1).

    Paper (P3, k=50, lengths 1000–1800): speedups 106 -> 256, growing
    with length.  Here lengths are scaled to CPython and both
    algorithms share the same engine so the ratio isolates the
    algorithmic improvement.
    """
    table = BenchTable(
        "Table 1 — old vs new sequential algorithm",
        ["length", "old (s)", "new (s)", "speedup", "old aligns", "new aligns"],
    )
    table.notes.append(
        f"k={k} top alignments, engine={engine}; paper: k=50, lengths 1000-1800, "
        "speedups 106-256 growing with length"
    )
    for length in lengths:
        seq = bench_sequence(length, seed=seed)
        exchange, gaps = default_scoring()
        t_old, (old, old_stats) = _timed(
            lambda: old_find_top_alignments(seq, k, exchange, gaps, engine=engine)
        )
        t_new, (new, new_stats) = _timed(
            lambda: find_top_alignments(seq, k, exchange, gaps, engine=engine)
        )
        if [(a.r, a.score) for a in old] != [(a.r, a.score) for a in new]:
            raise AssertionError(
                f"old and new algorithms diverged at length {length}"
            )
        table.add(
            length,
            t_old,
            t_new,
            t_old / t_new if t_new > 0 else float("inf"),
            old_stats.alignments,
            new_stats.alignments,
        )
    return table


# -- Table 2 -----------------------------------------------------------------


def table2_rows(size: int = 300, *, scalar_size: int | None = None) -> BenchTable:
    """Engine-tier alignment times (Table 2).

    Paper (largest titin split): conventional 5.2 s/1 matrix; SSE
    3.0 s/4 (6.9x); SSE2 2.2 s/8 (9.8x on a P4).  Here: pure-Python
    scalar vs numpy vector vs 4- and 8-lane int16 batches.
    """
    from ..simulate.calibrate import calibrate_local

    report = calibrate_local(size=size, scalar_size=scalar_size or max(size // 4, 60))
    table = BenchTable(
        "Table 2 — engine tiers (time to align / matrices per batch)",
        ["tier", "seconds", "matrices", "cells/s", "improvement"],
    )
    matrices = {"conventional": 1, "vector": 1, "sse": 4, "sse2": 8}
    for tier in ("conventional", "vector", "sse", "sse2"):
        table.add(
            tier,
            report.seconds[tier],
            matrices[tier],
            report.model.rates[tier],
            report.improvement(tier),
        )
    table.notes.append(
        "paper improvements: SSE 6.9x (P3) / 6.0x (P4), SSE2 9.8x (P4), "
        "both vs the compiled conventional kernel"
    )
    return table


# -- Figure 8 ----------------------------------------------------------------


def figure8_series(
    length: int = 360,
    ks: Seq[int] = (1, 2, 5, 10, 25),
    processors: Seq[int] = (2, 4, 8, 16, 32, 64, 128),
    *,
    machine: MachineModel = PENTIUM3,
    seed: int = 1912,
) -> dict[int, list[tuple[int, float, float]]]:
    """Speed improvement vs processor count per top-alignment target.

    Returns ``{k: [(P, speedup_vs_sequential, speedup_vs_sse), ...]}``.
    The sequential baseline runs the conventional tier (the paper's
    Figure 8 y-axis); the second ratio is against a one-CPU SSE run
    (the paper's "123x with respect to the SSE version").
    """
    seq = bench_sequence(length, seed=seed)
    exchange, gaps = default_scoring()
    oracle = AlignmentOracle(seq, exchange, gaps)
    kmax = max(ks)
    base_conv: dict[int, float] = {}
    base_sse: dict[int, float] = {}
    for k in sorted(ks):
        base_conv[k] = ClusterSimulator(
            oracle,
            ClusterConfig(
                processors=1,
                machine=machine,
                tier="conventional",
                dedicated_master=False,
            ),
        ).run(k).makespan
        base_sse[k] = ClusterSimulator(
            oracle,
            ClusterConfig(
                processors=1, machine=machine, tier="sse", dedicated_master=False
            ),
        ).run(k).makespan
    del kmax

    series: dict[int, list[tuple[int, float, float]]] = {k: [] for k in ks}
    for k in ks:
        for P in processors:
            result = ClusterSimulator(
                oracle,
                ClusterConfig(processors=P, machine=machine, tier="sse"),
            ).run(k)
            series[k].append(
                (P, base_conv[k] / result.makespan, base_sse[k] / result.makespan)
            )
    return series


# -- Speculative lane-batched driver -----------------------------------------


def batched_report(
    length: int = 240,
    k: int = 10,
    groups: Seq[int] = (1, 4, 8),
    *,
    engine: str = "lanes",
    seed: int = 1912,
) -> dict[str, Any]:
    """Throughput and waste of the speculative batched driver vs G=1.

    Runs the reference vector engine sequentially, then the lockstep
    ``engine`` at every G in ``groups`` (G=1 is always included as the
    speedup baseline), asserting along the way that each configuration
    returns bit-identical top alignments.  Returns a JSON-ready dict —
    the payload ``repro bench batched --json`` and the CI smoke job
    write as ``BENCH_batched.json``.
    """
    from ..core.topalign import find_top_alignments

    seq = bench_sequence(length, seed=seed)
    exchange, gaps = default_scoring()
    configs = [("vector", 1)]
    for g in sorted(set(groups) | {1}):
        configs.append((engine, g))

    rows: list[dict[str, Any]] = []
    reference: list[tuple[int, float, tuple]] | None = None
    baseline_rate = 0.0
    for eng, g in configs:
        tops, stats = find_top_alignments(seq, k, exchange, gaps, engine=eng, group=g)
        key = [(a.r, a.score, a.pairs) for a in tops]
        if reference is None:
            reference = key
        elif key != reference:
            raise AssertionError(
                f"engine={eng} G={g} diverged from the sequential reference"
            )
        if eng == engine and g == 1:
            baseline_rate = stats.cells_per_second
        rows.append(
            {
                "engine": stats.engine,
                "group": g,
                "seconds": stats.engine_seconds,
                "alignments": stats.alignments,
                "cells": stats.cells,
                "cells_per_second": stats.cells_per_second,
                "speculative_waste": stats.speculative_waste,
                "waste_ratio": stats.waste_ratio,
            }
        )
    for row in rows:
        row["speedup_vs_g1"] = (
            row["cells_per_second"] / baseline_rate if baseline_rate > 0 else 0.0
        )
    return {
        "length": length,
        "k": k,
        "seed": seed,
        "engine": engine,
        "identical_tops": True,
        "rows": rows,
    }


def batched_rows(
    length: int = 240,
    k: int = 10,
    groups: Seq[int] = (1, 4, 8),
    *,
    engine: str = "lanes",
    seed: int = 1912,
    report: dict[str, Any] | None = None,
) -> BenchTable:
    """Render :func:`batched_report` as a table (pass ``report`` to reuse one)."""
    if report is None:
        report = batched_report(length, k, groups, engine=engine, seed=seed)
    table = BenchTable(
        "Speculative batched driver — throughput vs batch width G",
        [
            "engine",
            "G",
            "seconds",
            "aligns",
            "cells",
            "cells/s",
            "waste",
            "waste %",
            "speedup",
        ],
    )
    for row in report["rows"]:
        table.add(
            row["engine"],
            row["group"],
            row["seconds"],
            row["alignments"],
            row["cells"],
            row["cells_per_second"],
            row["speculative_waste"],
            100.0 * row["waste_ratio"],
            row["speedup_vs_g1"],
        )
    table.notes.append(
        f"length={report['length']} k={report['k']}; every row returned "
        "bit-identical top alignments; speedup is cells/s vs the G=1 row "
        "of the same engine"
    )
    table.notes.append(
        "paper §5.1: speculation adds <0.70 % extra alignments at cluster "
        "scale; single-host G=8 trades a few % waste for lane throughput"
    )
    return table


# -- §3 realignment-avoidance claim ------------------------------------------


def realignment_rows(
    lengths: Seq[int] = (200, 300, 400),
    k: int = 10,
    *,
    seed: int = 1912,
) -> BenchTable:
    """Fraction of realignments the ordering heuristic avoids (§3: 90–97 %)."""
    table = BenchTable(
        "§3 — realignments avoided by the best-first queue",
        ["length", "k", "performed", "full rescan", "avoided %"],
    )
    for length in lengths:
        seq = bench_sequence(length, seed=seed)
        exchange, gaps = default_scoring()
        _, stats = find_top_alignments(seq, k, exchange, gaps)
        naive = (k - 1) * (len(seq) - 1)
        avoided = 100.0 * (1.0 - stats.realignments / naive) if naive else 0.0
        table.add(length, k, stats.realignments, naive, avoided)
    table.notes.append("paper: the heuristic avoids 90-97 % of realignments")
    return table


# -- k-mer index tier (routing + seeded bounds) -------------------------------


def _index_database(records: int, length: int, repeat_every: int) -> list[Sequence]:
    """The index benchmark's synthetic database: mostly random DNA.

    Every ``repeat_every``-th record carries an implanted tandem family
    (unit 40, four copies, 12 % divergence); the rest are background.
    With ``repeat_every=6`` the database is ~17 % repetitive — the
    low-repeat regime (<=20 %) the routing tier is built for.
    """
    from ..sequences.alphabet import DNA
    from ..sequences.workloads import RepeatSpec, implant_repeats, random_sequence

    database: list[Sequence] = []
    for i in range(records):
        if i % repeat_every == 0:
            workload = implant_repeats(
                length,
                RepeatSpec(unit_length=40, copies=4, substitution_rate=0.12),
                DNA,
                seed=i,
                id=f"rep{i:03d}",
            )
            database.append(workload.sequence)
        else:
            database.append(
                random_sequence(length, DNA, seed=100 + i, id=f"bg{i:03d}")
            )
    return database


def _tops_key(reports) -> list[tuple]:
    """Byte-comparison key of every record's accepted top alignments."""
    key = []
    for rep in reports:
        tops = [] if rep.result is None else [
            (a.r, a.score, a.pairs) for a in rep.result.top_alignments
        ]
        key.append((rep.id, tops))
    return key


def index_report(
    records: int = 24,
    length: int = 240,
    *,
    repeat_every: int = 6,
    min_score: float = 80.0,
    k: int = 10,
    store_dir: str | None = None,
) -> dict[str, Any]:
    """Database-scan throughput with and without the k-mer index tier.

    Scans the synthetic low-repeat database three ways — unindexed,
    indexed against a cold store, indexed again against the now-warm
    store — asserting that all three return byte-identical accepted
    tops.  Returns the JSON-ready payload ``repro bench index --json``
    and the CI bench gate write as ``BENCH_index.json``.
    """
    import shutil
    import tempfile

    from ..core.api import RepeatFinder
    from ..core.scan import DatabaseScanner
    from ..index import IndexConfig, IndexStore

    database = _index_database(records, length, repeat_every)

    def run(index: "IndexConfig | None", store: "IndexStore | None"):
        scanner = DatabaseScanner(
            finder=RepeatFinder(top_alignments=k, min_score=min_score),
            index=index,
            index_store=store,
        )
        seconds, reports = _timed(lambda: scanner.scan(database))
        return seconds, reports, dict(scanner.index_stats)

    def row(mode: str, seconds: float, reports, stats: dict[str, Any]) -> dict[str, Any]:
        cells = sum(r.result.stats.cells for r in reports if r.result is not None)
        aligns = sum(
            r.result.stats.alignments for r in reports if r.result is not None
        )
        return {
            "mode": mode,
            "seconds": seconds,
            "cells": cells,
            "cells_per_second": cells / seconds if seconds > 0 else 0.0,
            "alignments": aligns,
            "skipped": stats.get("skip", 0),
            "deferred": stats.get("defer", 0),
            "full": stats.get("full", 0),
            "index_builds": stats.get("index_builds", 0),
            "index_loads": stats.get("index_loads", 0),
            "build_seconds": stats.get("index_seconds", 0.0),
        }

    owned = store_dir is None
    root = tempfile.mkdtemp(prefix="repro-index-bench-") if owned else store_dir
    try:
        config = IndexConfig()
        base_s, base_reports, _ = run(None, None)
        cold_s, cold_reports, cold_stats = run(config, IndexStore(root))
        warm_s, warm_reports, warm_stats = run(config, IndexStore(root))
    finally:
        if owned:
            shutil.rmtree(root, ignore_errors=True)

    reference = _tops_key(base_reports)
    identical = (
        _tops_key(cold_reports) == reference and _tops_key(warm_reports) == reference
    )
    rows = [
        row("unindexed", base_s, base_reports, {}),
        row("indexed-cold", cold_s, cold_reports, cold_stats),
        row("indexed-warm", warm_s, warm_reports, warm_stats),
    ]
    return {
        "records": records,
        "length": length,
        "repeat_every": repeat_every,
        "repetitive_fraction": 1.0 / repeat_every,
        "min_score": min_score,
        "k": k,
        "identical_tops": identical,
        "speedup_cold": base_s / cold_s if cold_s > 0 else 0.0,
        "speedup_warm": base_s / warm_s if warm_s > 0 else 0.0,
        "warm_rebuilds": warm_stats.get("index_builds", 0),
        "rows": rows,
    }


def pruning_report(
    length: int = 300,
    k: int = 4,
    *,
    unit_length: int = 100,
    copies: int = 2,
    substitution_rate: float = 0.03,
    min_score: float = 140.0,
    engine: str = "vector",
    seed: int = 7,
) -> dict[str, Any]:
    """Exact in-fill pruning ablation (see :mod:`repro.align.pruning`).

    Runs the same search with pruning off and on over a DNA sequence
    carrying one strong implanted repeat, asserts the accepted tops are
    byte-identical, and reports *effective* throughput: the pruning-off
    cell count divided by each run's wall time, so skipped cells count
    as work delivered, not work dodged.  The high ``min_score`` is the
    regime pruning targets — edge splits retire before their first
    fill, and hopeless fills stop as soon as the per-row bounds prove
    they cannot reach the floor.  Returns the JSON-ready payload
    ``repro bench pruning --json`` and the CI prune gate write as
    ``BENCH_pruning.json``.
    """
    from ..sequences.alphabet import DNA
    from ..sequences.workloads import RepeatSpec, implant_repeats

    workload = implant_repeats(
        length,
        RepeatSpec(
            unit_length=unit_length,
            copies=copies,
            substitution_rate=substitution_rate,
        ),
        DNA,
        seed=seed,
    )
    sequence = workload.sequence
    from ..scoring.exchange import match_mismatch

    exchange = match_mismatch(sequence.alphabet, 2.0, -1.0)
    gaps = GapPenalties(2, 1)

    def run(prune: bool):
        return _timed(
            lambda: find_top_alignments(
                sequence,
                k,
                exchange,
                gaps,
                engine=engine,
                min_score=min_score,
                prune=prune,
            )
        )

    run(True)  # warm numpy / allocator before timing
    off_s, (off_tops, off_stats) = run(False)
    on_s, (on_tops, on_stats) = run(True)
    baseline_cells = off_stats.cells

    def row(prune: bool, seconds: float, tops, stats) -> dict[str, Any]:
        return {
            "prune": prune,
            "seconds": seconds,
            "tops": len(tops),
            "alignments": stats.alignments,
            "cells": stats.cells,
            "pruned_cells": stats.pruned_cells,
            "pruned_lanes": stats.pruned_lanes,
            "effective_cells_per_second": (
                baseline_cells / seconds if seconds > 0 else 0.0
            ),
        }

    identical = [(a.r, a.score, a.pairs) for a in on_tops] == [
        (a.r, a.score, a.pairs) for a in off_tops
    ]
    return {
        "length": length,
        "k": k,
        "unit_length": unit_length,
        "copies": copies,
        "substitution_rate": substitution_rate,
        "min_score": min_score,
        "engine": engine,
        "seed": seed,
        "identical_tops": identical,
        "speedup": off_s / on_s if on_s > 0 else 0.0,
        "cells_skipped_fraction": (
            1.0 - on_stats.cells / baseline_cells if baseline_cells else 0.0
        ),
        "rows": [
            row(False, off_s, off_tops, off_stats),
            row(True, on_s, on_tops, on_stats),
        ],
    }


def pruning_rows(
    length: int = 300,
    k: int = 4,
    *,
    min_score: float = 140.0,
    report: dict[str, Any] | None = None,
) -> BenchTable:
    """Render :func:`pruning_report` as a table (pass ``report`` to reuse one)."""
    if report is None:
        report = pruning_report(length, k, min_score=min_score)
    table = BenchTable(
        "Exact pruning — effective throughput with provable score bounds",
        [
            "prune",
            "seconds",
            "tops",
            "aligns",
            "cells",
            "pruned cells",
            "pruned lanes",
            "eff. cells/s",
        ],
    )
    for row in report["rows"]:
        table.add(
            "on" if row["prune"] else "off",
            row["seconds"],
            row["tops"],
            row["alignments"],
            row["cells"],
            row["pruned_cells"],
            row["pruned_lanes"],
            row["effective_cells_per_second"],
        )
    table.notes.append(
        f"DNA {report['length']} bp, one implanted "
        f"{report['unit_length']}x{report['copies']} repeat, "
        f"min_score={report['min_score']:g}, engine={report['engine']}; "
        f"accepted tops byte-identical: {report['identical_tops']}"
    )
    table.notes.append(
        f"speedup {report['speedup']:.2f}x effective cells/s "
        f"({report['cells_skipped_fraction']:.0%} of cells never evaluated); "
        "bounds are exact, so this is pure saved work"
    )
    return table


def index_rows(
    records: int = 24,
    length: int = 240,
    *,
    repeat_every: int = 6,
    min_score: float = 80.0,
    k: int = 10,
    report: dict[str, Any] | None = None,
) -> BenchTable:
    """Render :func:`index_report` as a table (pass ``report`` to reuse one)."""
    if report is None:
        report = index_report(
            records, length, repeat_every=repeat_every, min_score=min_score, k=k
        )
    table = BenchTable(
        "k-mer index tier — database-scan throughput on a low-repeat database",
        [
            "mode",
            "seconds",
            "cells",
            "cells/s",
            "aligns",
            "skip",
            "defer",
            "full",
            "builds",
            "loads",
        ],
    )
    for row in report["rows"]:
        table.add(
            row["mode"],
            row["seconds"],
            row["cells"],
            row["cells_per_second"],
            row["alignments"],
            row["skipped"],
            row["deferred"],
            row["full"],
            row["index_builds"],
            row["index_loads"],
        )
    table.notes.append(
        f"{report['records']} DNA records x {report['length']} bp, "
        f"{report['repetitive_fraction']:.0%} repetitive, "
        f"min_score={report['min_score']:g}; accepted tops byte-identical "
        f"across all modes: {report['identical_tops']}"
    )
    table.notes.append(
        f"speedup: {report['speedup_cold']:.1f}x cold, "
        f"{report['speedup_warm']:.1f}x warm "
        f"({report['warm_rebuilds']} indices rebuilt on the warm rerun)"
    )
    return table
