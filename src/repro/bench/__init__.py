"""Benchmark harness helpers (used by ``benchmarks/`` and the examples)."""

from .harness import (
    BenchTable,
    batched_report,
    batched_rows,
    bench_sequence,
    default_scoring,
    figure8_series,
    index_report,
    index_rows,
    pruning_report,
    pruning_rows,
    realignment_rows,
    table1_rows,
    table2_rows,
)

__all__ = [
    "BenchTable",
    "bench_sequence",
    "default_scoring",
    "table1_rows",
    "table2_rows",
    "figure8_series",
    "realignment_rows",
    "batched_report",
    "batched_rows",
    "index_report",
    "index_rows",
    "pruning_report",
    "pruning_rows",
]
