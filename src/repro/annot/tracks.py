"""Per-coordinate repetitiveness profile tracks.

ProfRep-style output: for every scanned sequence, a windowed
repeat-copy *coverage depth* along its coordinates.  Depth at a residue
is the number of delineated repeat copies covering it (across all
families), so the track answers "how repetitive is this region" at a
glance and sums are exactly auditable: the mean window depths weighted
by window width add up to the total copy residue count,

    sum(values[w] * width[w]) == sum(end - start + 1 over all copies).

That identity is the consistency contract between the profile JSON and
the GFF3 copy spans — tested, and cheap for consumers to re-verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

__all__ = ["ProfileTrack", "build_track", "render_wig"]

#: Sparkline-friendly resolution cap: auto-windowing targets at most
#: this many windows per sequence.
_TARGET_WINDOWS = 120


def auto_window(length: int) -> int:
    """Deterministic window width for ``length`` (≈120 windows, ≥1)."""
    if length <= 0:
        return 1
    return max(1, -(-length // _TARGET_WINDOWS))


@dataclass(frozen=True)
class ProfileTrack:
    """One sequence's windowed repeat-coverage profile.

    ``values[w]`` is the mean copy depth over window ``w``; windows are
    ``window`` residues wide except the last, which covers the tail
    (its width is ``length - (len(values) - 1) * window``).
    """

    sequence_id: str
    length: int
    window: int
    values: tuple[float, ...]
    #: Fraction of residues covered by at least one repeat copy.
    repetitiveness: float
    #: Mean copy depth over the whole sequence.
    mean_depth: float
    #: Deepest single-residue copy depth.
    max_depth: int
    n_families: int
    n_copies: int

    def window_span(self, index: int) -> tuple[int, int]:
        """1-based inclusive residue span of window ``index``."""
        start = index * self.window + 1
        return start, min((index + 1) * self.window, self.length)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (the ``profile.json`` per-sequence entry)."""
        return {
            "id": self.sequence_id,
            "length": self.length,
            "window": self.window,
            "values": list(self.values),
            "repetitiveness": self.repetitiveness,
            "mean_depth": self.mean_depth,
            "max_depth": self.max_depth,
            "n_families": self.n_families,
            "n_copies": self.n_copies,
        }


def coverage_depth(
    length: int, copies: Iterable[tuple[int, int]]
) -> np.ndarray:
    """Per-residue copy depth (int32) from 1-based inclusive spans."""
    depth = np.zeros(length, dtype=np.int32)
    for start, end in copies:
        if not 1 <= start <= end <= length:
            raise ValueError(
                f"copy ({start}, {end}) outside sequence of length {length}"
            )
        depth[start - 1 : end] += 1
    return depth


def build_track(
    sequence_id: str,
    length: int,
    families: Iterable[tuple[int, tuple[tuple[int, int], ...]]],
    *,
    window: int = 0,
) -> ProfileTrack:
    """Windowed profile of ``families`` (``(family, copies)`` pairs).

    ``window=0`` picks :func:`auto_window`; window means are exact
    (``float(sum)/width``), so the weighted-sum identity in the module
    docstring holds to float precision.
    """
    family_list = list(families)
    all_copies = [span for _, copies in family_list for span in copies]
    if window <= 0:
        window = auto_window(length)
    depth = coverage_depth(length, all_copies)
    values: list[float] = []
    for start in range(0, length, window):
        chunk = depth[start : start + window]
        values.append(float(chunk.sum()) / chunk.size)
    return ProfileTrack(
        sequence_id=sequence_id,
        length=length,
        window=window,
        values=tuple(values),
        repetitiveness=float((depth > 0).mean()) if length else 0.0,
        mean_depth=float(depth.mean()) if length else 0.0,
        max_depth=int(depth.max()) if length else 0,
        n_families=len(family_list),
        n_copies=len(all_copies),
    )


def render_wig(tracks: Iterable[ProfileTrack]) -> str:
    """Wig-style text form of the profile tracks.

    One ``fixedStep`` block per sequence (``step`` = ``span`` = the
    track's window), one mean-depth value per line.  The final window's
    value still describes only the in-bounds tail, as in the JSON form.
    """
    lines: list[str] = ["track type=wiggle_0 name=repro_repeat_depth"]
    for track in tracks:
        lines.append(
            f"fixedStep chrom={track.sequence_id or 'unnamed'} start=1 "
            f"step={track.window} span={track.window}"
        )
        lines.extend(f"{value:g}" for value in track.values)
    return "\n".join(lines) + "\n"
