"""GFF3 emission and validation for repeat annotations.

One ``repeat_region`` feature per family (the ``ID`` anchor) and one
``repeat_unit`` child per delineated copy (``Parent`` linkage), with
1-based *closed* intervals — exactly the coordinate convention of
:class:`repro.core.result.Repeat.copies`, so spans round-trip without
off-by-one adjustment.  Attributes carry the family's score, MSA
identity, consensus length and copy count.

The validator is deliberately in-repo and dependency-free: CI's
``annot-smoke`` job runs every emitted track through it, so the writer
cannot drift from the subset of the spec we rely on (version pragma,
``##sequence-region`` bounds, 9 tab-separated columns, escaped
attributes, resolvable ``Parent`` references).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..core.report import FamilyModel

__all__ = ["escape_attribute", "escape_seqid", "render_gff3", "validate_gff3"]

#: Characters that must be percent-encoded inside attribute *values*
#: (the GFF3 structural characters, plus the escape char itself and
#: whitespace control characters).
_ATTRIBUTE_UNSAFE = {
    "%": "%25",
    ";": "%3B",
    "=": "%3D",
    "&": "%26",
    ",": "%2C",
    "\t": "%09",
    "\n": "%0A",
    "\r": "%0D",
}

#: Characters a seqid (column 1) may contain unescaped, per the spec.
_SEQID_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789.:^*$@!+_?-|"
)


def escape_attribute(value: str) -> str:
    """Percent-encode the GFF3-structural characters in ``value``."""
    # '%' must be first so already-escaped output never double-escapes.
    out = value.replace("%", "%25")
    for raw, escaped in _ATTRIBUTE_UNSAFE.items():
        if raw != "%":
            out = out.replace(raw, escaped)
    return out


def unescape_attribute(value: str) -> str:
    """Inverse of :func:`escape_attribute` (used by the validator/tests)."""
    for raw, escaped in _ATTRIBUTE_UNSAFE.items():
        if raw != "%":
            value = value.replace(escaped, raw)
    return value.replace("%25", "%")


def escape_seqid(seqid: str) -> str:
    """Percent-encode every character outside the seqid-safe set."""
    return "".join(
        c if c in _SEQID_SAFE else f"%{ord(c):02X}" for c in seqid
    )


def _feature_line(
    seqid: str,
    ftype: str,
    start: int,
    end: int,
    score: float | None,
    attributes: list[tuple[str, str]],
) -> str:
    attr_text = ";".join(
        f"{key}={escape_attribute(value)}" for key, value in attributes
    )
    score_text = "." if score is None else f"{score:g}"
    return "\t".join(
        [
            escape_seqid(seqid),
            "repro",
            ftype,
            str(start),
            str(end),
            score_text,
            "+",
            ".",
            attr_text,
        ]
    )


def render_gff3(
    sequences: Iterable[tuple[str, int, list["FamilyModel"]]],
) -> str:
    """The GFF3 document for ``(seq_id, length, families)`` triples.

    Emits the ``##gff-version 3`` pragma, one ``##sequence-region``
    pragma per sequence, then per family a ``repeat_region`` parent
    spanning all copies and one ``repeat_unit`` child per copy.
    """
    entries = list(sequences)
    lines = ["##gff-version 3"]
    for seq_id, length, _families in entries:
        name = escape_seqid(seq_id or "unnamed")
        lines.append(f"##sequence-region {name} 1 {length}")
    for seq_id, _length, families in entries:
        seqid = seq_id or "unnamed"
        for model in families:
            region_start, region_end = model.region
            family_id = f"{escape_seqid(seqid)}.family{model.family}"
            parent_attrs = [
                ("ID", family_id),
                ("Name", f"repeat family {model.family}"),
                ("n_copies", str(model.n_copies)),
                ("consensus_length", str(len(model.consensus))),
                ("identity", f"{model.identity:.3f}"),
                ("columns", str(model.columns)),
                ("unit_length", f"{model.unit_length:g}"),
            ]
            lines.append(
                _feature_line(
                    seqid,
                    "repeat_region",
                    region_start,
                    region_end,
                    model.score or None,
                    parent_attrs,
                )
            )
            for copy_index, (start, end) in enumerate(model.copies):
                lines.append(
                    _feature_line(
                        seqid,
                        "repeat_unit",
                        start,
                        end,
                        model.score or None,
                        [
                            ("ID", f"{family_id}.copy{copy_index}"),
                            ("Parent", family_id),
                            ("consensus", model.consensus),
                        ],
                    )
                )
    return "\n".join(lines) + "\n"


_STRANDS = frozenset({"+", "-", ".", "?"})
_PHASES = frozenset({".", "0", "1", "2"})


def validate_gff3(text: str) -> list[str]:
    """Structural errors in ``text`` (empty list = valid).

    Checks the subset of the GFF3 spec the writer relies on: leading
    version pragma, well-formed ``##sequence-region`` pragmas, nine
    tab-separated columns, 1-based closed intervals inside the declared
    region bounds, numeric-or-dot score, legal strand/phase, attribute
    ``key=value`` syntax free of unescaped structural characters, and
    ``Parent`` references resolving to an earlier ``ID``.
    """
    errors: list[str] = []
    lines = text.splitlines()
    if not lines or lines[0].strip() != "##gff-version 3":
        errors.append("line 1: missing '##gff-version 3' pragma")
    regions: dict[str, tuple[int, int]] = {}
    seen_ids: set[str] = set()
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("##sequence-region"):
            parts = line.split()
            if len(parts) != 4:
                errors.append(
                    f"line {lineno}: sequence-region needs "
                    "'##sequence-region <seqid> <start> <end>'"
                )
                continue
            try:
                start, end = int(parts[2]), int(parts[3])
            except ValueError:
                errors.append(
                    f"line {lineno}: sequence-region bounds must be integers"
                )
                continue
            if start < 1 or end < start:
                errors.append(
                    f"line {lineno}: sequence-region bounds must satisfy "
                    "1 <= start <= end"
                )
            regions[parts[1]] = (start, end)
            continue
        if line.startswith("#"):
            continue
        columns = line.split("\t")
        if len(columns) != 9:
            errors.append(
                f"line {lineno}: expected 9 tab-separated columns, "
                f"got {len(columns)}"
            )
            continue
        seqid, _source, _ftype, start_s, end_s, score, strand, phase, attrs = (
            columns
        )
        try:
            start, end = int(start_s), int(end_s)
        except ValueError:
            errors.append(f"line {lineno}: start/end must be integers")
            continue
        if start < 1:
            errors.append(f"line {lineno}: start must be >= 1 (1-based)")
        if end < start:
            errors.append(f"line {lineno}: end {end} < start {start}")
        bounds = regions.get(seqid)
        if bounds is None:
            errors.append(
                f"line {lineno}: seqid {seqid!r} has no "
                "##sequence-region pragma"
            )
        elif not (bounds[0] <= start and end <= bounds[1]):
            errors.append(
                f"line {lineno}: feature {start}..{end} outside "
                f"sequence-region {bounds[0]}..{bounds[1]}"
            )
        if score != ".":
            try:
                float(score)
            except ValueError:
                errors.append(
                    f"line {lineno}: score must be '.' or numeric, "
                    f"got {score!r}"
                )
        if strand not in _STRANDS:
            errors.append(f"line {lineno}: bad strand {strand!r}")
        if phase not in _PHASES:
            errors.append(f"line {lineno}: bad phase {phase!r}")
        parsed: dict[str, str] = {}
        for item in attrs.split(";"):
            if not item:
                errors.append(f"line {lineno}: empty attribute entry")
                continue
            key, eq, value = item.partition("=")
            if not eq or not key:
                errors.append(
                    f"line {lineno}: attribute {item!r} is not key=value"
                )
                continue
            if any(c in value for c in ("=", ";", ",", "\t")):
                errors.append(
                    f"line {lineno}: attribute {key} value carries an "
                    "unescaped structural character"
                )
            parsed[key] = value
        if "ID" in parsed:
            seen_ids.add(parsed["ID"])
        parent = parsed.get("Parent")
        if parent is not None and parent not in seen_ids:
            errors.append(
                f"line {lineno}: Parent={parent!r} does not reference an "
                "earlier ID"
            )
    return errors
