"""Self-contained single-file HTML repeat report.

Everything is inline — CSS in one ``<style>`` block, sparklines as
inline SVG, collapsible sections as native ``<details>`` elements — so
the file renders identically from disk, an artifact store or an
air-gapped workstation.  The contract enforced by tests and the CI
smoke job: the document contains **zero** external references (no
``http(s)`` URLs, no ``<script src>``, no ``<link>``).
"""

from __future__ import annotations

import html
from typing import TYPE_CHECKING, Iterable

from ..core.msa import render_msa
from .tracks import ProfileTrack

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..core.report import FamilyModel

__all__ = ["render_html"]

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 64rem;
       color: #1a222c; background: #fcfcfa; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #2a5d9c; padding-bottom: .3rem; }
h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .6rem 0; font-size: .9rem; }
th, td { border: 1px solid #c8cdd4; padding: .25rem .6rem; text-align: left; }
th { background: #eef2f7; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
pre { background: #f2f4f6; padding: .6rem; overflow-x: auto; font-size: .8rem; }
details { margin: .4rem 0; }
summary { cursor: pointer; color: #2a5d9c; }
.spark { margin: .4rem 0; }
.meta { color: #5a6572; font-size: .85rem; }
.failed { color: #a02020; }
.consensus { font-family: monospace; word-break: break-all; }
"""


def _sparkline(track: ProfileTrack, *, width: int = 560, height: int = 64) -> str:
    """Inline SVG polyline of a profile track's window depths."""
    values = track.values or (0.0,)
    peak = max(max(values), 1e-9)
    n = len(values)
    points = []
    for i, value in enumerate(values):
        x = (i + 0.5) / n * width
        y = height - (value / peak) * (height - 4) - 2
        points.append(f"{x:.1f},{y:.1f}")
    baseline = (
        f"0,{height} " + " ".join(points) + f" {width},{height}"
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="repeat depth profile of {html.escape(track.sequence_id)}">'
        f'<polygon points="{baseline}" fill="#c9dcf2"/>'
        f'<polyline points="{" ".join(points)}" fill="none" '
        f'stroke="#2a5d9c" stroke-width="1.5"/>'
        "</svg>"
    )


def _family_rows(families: list["FamilyModel"]) -> str:
    rows = []
    for model in families:
        start, end = model.region
        spans = ", ".join(f"{s}-{e}" for s, e in model.copies)
        rows.append(
            "<tr>"
            f'<td class="num">{model.family}</td>'
            f'<td class="num">{model.n_copies}</td>'
            f'<td class="num">{model.unit_length:.0f}</td>'
            f'<td class="num">{model.columns}</td>'
            f'<td class="num">{model.score:g}</td>'
            f'<td class="num">{model.identity:.0%}</td>'
            f'<td class="num">{start}-{end}</td>'
            f"<td>{html.escape(spans)}</td>"
            "</tr>"
        )
    return "".join(rows)


def _family_details(families: list["FamilyModel"]) -> str:
    parts = []
    for model in families:
        body = [
            f'<p class="consensus">consensus ({len(model.consensus)} '
            f"residues): {html.escape(model.consensus)}</p>"
        ]
        if model.unit_choice is not None:
            choice = model.unit_choice
            body.append(
                f'<p class="meta">unit analysis: best period '
                f"{choice.unit_length} ({choice.copies} blocks, "
                f"{choice.identity:.0%} identity)</p>"
            )
        if model.msa is not None:
            body.append(
                "<pre>" + html.escape(render_msa(model.msa)) + "</pre>"
            )
        parts.append(
            "<details>"
            f"<summary>family {model.family} — consensus &amp; "
            "alignment</summary>"
            + "".join(body)
            + "</details>"
        )
    return "".join(parts)


def render_html(
    entries: Iterable[
        tuple[str, int, ProfileTrack | None, list["FamilyModel"], str | None]
    ],
    *,
    title: str = "repro repeat annotation",
) -> str:
    """The full report for ``(id, length, track, families, error)`` entries."""
    sections = []
    n_sequences = 0
    n_families = 0
    for seq_id, length, track, families, error in entries:
        n_sequences += 1
        n_families += len(families)
        name = html.escape(seq_id or "unnamed")
        if error is not None:
            sections.append(
                f"<h2>{name}</h2>"
                f'<p class="failed">scan failed: {html.escape(error)}</p>'
            )
            continue
        meta = f"{length} residues, {len(families)} repeat families"
        if track is not None:
            meta += (
                f", {track.repetitiveness:.0%} repetitive "
                f"(max depth {track.max_depth}, window {track.window})"
            )
        section = [f"<h2>{name}</h2>", f'<p class="meta">{meta}</p>']
        if track is not None:
            section.append(_sparkline(track))
        if families:
            section.append(
                "<table><thead><tr><th>family</th><th>copies</th>"
                "<th>~unit</th><th>columns</th><th>score</th>"
                "<th>identity</th><th>region</th><th>copy spans</th>"
                "</tr></thead><tbody>"
                + _family_rows(families)
                + "</tbody></table>"
            )
            section.append(_family_details(families))
        else:
            section.append('<p class="meta">no repeat families detected.</p>')
        sections.append("".join(section))
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        f'<p class="meta">{n_sequences} sequences, {n_families} repeat '
        "families. Generated by repro annotate; this file is "
        "self-contained (no external resources).</p>"
        + "".join(sections)
        + "</body></html>\n"
    )
