"""``repro_annot_*`` metric families.

Same shape as the index tier's helpers: one ``collecting`` check per
call site, zero cost when metrics are off.
"""

from __future__ import annotations

from ..obs import get_registry

__all__ = [
    "observe_render_seconds",
    "record_report",
    "record_report_denied",
]

#: Render-time buckets (seconds): GFF3/JSON render in microseconds,
#: HTML with MSA blocks can take longer on repeat-dense databases.
RENDER_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


def record_report(fmt: str) -> None:
    registry = get_registry()
    if registry.collecting:
        registry.counter(
            "repro_annot_reports_total",
            help="Annotation reports rendered, by output format",
            format=fmt,
        ).inc()


def record_report_denied() -> None:
    registry = get_registry()
    if registry.collecting:
        registry.counter(
            "repro_annot_reports_denied_total",
            help="Report requests refused for lack of tenant ownership",
        ).inc()


def observe_render_seconds(fmt: str, seconds: float) -> None:
    registry = get_registry()
    if registry.collecting:
        registry.histogram(
            "repro_annot_render_seconds",
            buckets=RENDER_BUCKETS,
            help="Wall time spent rendering one annotation artifact",
            format=fmt,
        ).observe(seconds)
