"""repro.annot — the annotation product surface.

Turns scan results plus the core consensus/MSA machinery into the
artifacts a downstream consumer actually ingests: per-sequence
repetitiveness profile tracks (:mod:`~repro.annot.tracks`), validated
GFF3 repeat annotations (:mod:`~repro.annot.gff`) and a self-contained
single-file HTML report (:mod:`~repro.annot.report_html`), tied
together by the :class:`~repro.annot.model.Annotation` object model.

This layer consumes :class:`repro.core.report.FamilyModel` and scan
results only — it never reaches into the alignment kernels (lint rule
RPR020 enforces that boundary).
"""

from .gff import escape_attribute, escape_seqid, render_gff3, validate_gff3
from .model import (
    PROFILE_FORMAT,
    PROFILE_FORMAT_VERSION,
    Annotation,
    SequenceAnnotation,
    annotate_document,
    annotate_result,
    annotate_scan,
)
from .report_html import render_html
from .tracks import ProfileTrack, build_track, render_wig

__all__ = [
    "Annotation",
    "PROFILE_FORMAT",
    "PROFILE_FORMAT_VERSION",
    "ProfileTrack",
    "SequenceAnnotation",
    "annotate_document",
    "annotate_result",
    "annotate_scan",
    "build_track",
    "escape_attribute",
    "escape_seqid",
    "render_gff3",
    "render_html",
    "render_wig",
    "validate_gff3",
]
