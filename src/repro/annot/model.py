"""The annotation object model: one scan -> three artifacts.

Turns scan results plus the core consensus/MSA machinery into the three
artifacts a downstream consumer actually ingests:

* **profile tracks** — windowed repeat-copy coverage per sequence
  (JSON + wig-style text), see :mod:`repro.annot.tracks`;
* **GFF3** — one ``repeat_region`` per family with ``repeat_unit``
  children, validated in-repo, see :mod:`repro.annot.gff`;
* **HTML report** — a single self-contained file with sparklines,
  family tables and collapsible MSA views, see
  :mod:`repro.annot.report_html`.

This layer consumes :class:`repro.core.report.FamilyModel` and scan
results only — it never reaches into the alignment kernels (lint rule
RPR020 enforces that boundary).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Iterable, Sequence as SequenceT

from ..core.report import FamilyModel, extract_families
from ..core.result import RepeatResult
from ..core.scan import ScanDocument, SequenceReport
from ..sequences.sequence import Sequence
from .gff import render_gff3, validate_gff3
from .metrics import observe_render_seconds, record_report
from .report_html import render_html
from .tracks import ProfileTrack, build_track, render_wig

__all__ = [
    "Annotation",
    "PROFILE_FORMAT",
    "PROFILE_FORMAT_VERSION",
    "SequenceAnnotation",
    "annotate_document",
    "annotate_result",
    "annotate_scan",
]

PROFILE_FORMAT = "repro-profile"
PROFILE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class SequenceAnnotation:
    """One scanned sequence's annotation: families plus its profile."""

    sequence_id: str
    length: int
    families: tuple[FamilyModel, ...]
    track: ProfileTrack | None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class Annotation:
    """A full annotation run over a scanned database.

    The three renderers are pure functions of this object, so any
    artifact can be regenerated from a cached scan without re-running
    alignment.
    """

    sequences: tuple[SequenceAnnotation, ...]

    @property
    def n_families(self) -> int:
        return sum(len(entry.families) for entry in self.sequences)

    def gff3(self) -> str:
        """The validated GFF3 track for every successful sequence."""
        start = perf_counter()
        text = render_gff3(
            (entry.sequence_id, entry.length, list(entry.families))
            for entry in self.sequences
            if entry.ok
        )
        observe_render_seconds("gff3", perf_counter() - start)
        record_report("gff3")
        return text

    def profile_payload(self) -> dict[str, Any]:
        """The ``profile.json`` document (plain JSON-serialisable)."""
        start = perf_counter()
        records = []
        total_copy_residues = 0
        for entry in self.sequences:
            record: dict[str, Any] = {"id": entry.sequence_id}
            if entry.error is not None:
                record["error"] = entry.error
            elif entry.track is not None:
                record.update(entry.track.to_dict())
                total_copy_residues += sum(
                    end - start_ + 1
                    for model in entry.families
                    for start_, end in model.copies
                )
            records.append(record)
        payload = {
            "format": PROFILE_FORMAT,
            "version": PROFILE_FORMAT_VERSION,
            "sequences": records,
            "total_copy_residues": total_copy_residues,
        }
        observe_render_seconds("json", perf_counter() - start)
        record_report("json")
        return payload

    def profile_json(self) -> str:
        return json.dumps(self.profile_payload(), indent=2) + "\n"

    def html(self, *, title: str = "repro repeat annotation") -> str:
        """The self-contained single-file HTML report."""
        start = perf_counter()
        text = render_html(
            (
                (
                    entry.sequence_id,
                    entry.length,
                    entry.track,
                    list(entry.families),
                    entry.error,
                )
                for entry in self.sequences
            ),
            title=title,
        )
        observe_render_seconds("html", perf_counter() - start)
        record_report("html")
        return text

    def wig(self) -> str:
        """Wig-style text form of the profile tracks."""
        return render_wig(
            entry.track for entry in self.sequences if entry.track is not None
        )


def _families_without_sequence(result: RepeatResult) -> list[FamilyModel]:
    """Coordinate-only family models for a scan saved without residues.

    Consensus, unit analysis and MSA need the sequence text; when a scan
    payload omitted it we still annotate spans, copy counts and column
    counts so GFF3/profile output stays available.
    """
    models = []
    for repeat in result.repeats:
        copies = tuple(repeat.copies)
        mean_len = sum(e - s + 1 for s, e in copies) / len(copies)
        models.append(
            FamilyModel(
                family=repeat.family,
                copies=copies,
                columns=repeat.columns,
                unit_length=mean_len,
                consensus="",
                score=0.0,
                identity=0.0,
            )
        )
    return models


def annotate_result(
    sequence: Sequence,
    result: RepeatResult,
    *,
    window: int = 0,
    msa: bool = True,
) -> SequenceAnnotation:
    """Annotate one sequence's finished scan result."""
    families = tuple(extract_families(sequence, result, msa=msa))
    track = build_track(
        sequence.id,
        len(sequence),
        ((model.family, model.copies) for model in families),
        window=window,
    )
    return SequenceAnnotation(
        sequence_id=sequence.id,
        length=len(sequence),
        families=families,
        track=track,
        error=None,
    )


def annotate_scan(
    reports: Iterable[SequenceReport],
    sequences: SequenceT[Sequence | None] = (),
    *,
    window: int = 0,
    msa: bool = True,
) -> Annotation:
    """Annotate a whole scan (``reports`` aligned with ``sequences``).

    ``sequences`` may be shorter than ``reports`` or hold ``None``
    entries (a scan payload saved without residue text); those records
    fall back to coordinate-only family models.
    """
    entries: list[SequenceAnnotation] = []
    sequence_list = list(sequences)
    for index, report in enumerate(reports):
        sequence = sequence_list[index] if index < len(sequence_list) else None
        if report.error is not None or report.result is None:
            entries.append(
                SequenceAnnotation(
                    sequence_id=report.id,
                    length=report.length,
                    families=(),
                    track=None,
                    error=report.error or "scan produced no result",
                )
            )
            continue
        if sequence is not None:
            entries.append(
                annotate_result(sequence, report.result, window=window, msa=msa)
            )
            continue
        families = tuple(_families_without_sequence(report.result))
        track = build_track(
            report.id,
            report.length,
            ((model.family, model.copies) for model in families),
            window=window,
        )
        entries.append(
            SequenceAnnotation(
                sequence_id=report.id,
                length=report.length,
                families=families,
                track=track,
                error=None,
            )
        )
    return Annotation(sequences=tuple(entries))


def annotate_document(
    document: ScanDocument, *, window: int = 0, msa: bool = True
) -> Annotation:
    """Annotate a saved ``repro scan --json`` document."""
    return annotate_scan(
        document.reports, document.sequences, window=window, msa=msa
    )
