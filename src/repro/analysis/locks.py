"""RPR003 — static lock-discipline race detection.

The shared-memory scheduler (§4.2) speculates on tasks concurrently:
worker threads mutate one task queue, one in-flight table and one
search state, all serialised by a single condition variable.  The
paper's exactness argument ("exactly the same top alignments") only
holds if *every* mutation of that shared state happens under the lock
— a single unlocked ``self._inflight[...] = ...`` re-introduces the
races the dominance test was designed to exclude, and no unit test
reliably catches it.

This module infers the lock discipline per class, lockset-style
(cf. Eraser / RacerD), and flags violations:

1. a class is *concurrent* if any of its methods stores a
   ``threading.Lock`` / ``RLock`` / ``Condition`` on ``self``;
2. an attribute is *guarded* if at least one method mutates it inside
   a ``with self.<lock>:`` block — the discipline is inferred from the
   code's own majority behaviour, no annotations needed;
3. every other mutation of a guarded attribute must then also be
   (a) under a ``with self.<lock>:`` block, or
   (b) inside ``__init__`` (no other thread can hold a reference yet),
   or (c) inside a method whose ``def`` line carries the marker
   ``# repro-lint: holds-lock`` — a documented caller-must-hold-lock
   contract;
4. calling a ``holds-lock`` method from an unlocked context is itself
   a violation (the contract must be discharged somewhere).

Mutations recognised: ``self.X = ...``, ``self.X += ...``,
``del self.X``, ``self.X[...] = ...``, ``del self.X[...]`` and calls
of known mutating methods ``self.X.append(...)`` etc.
"""

from __future__ import annotations

import ast

from .diagnostics import HOLDS_LOCK_MARK, Diagnostic

__all__ = ["check_lock_discipline", "MUTATING_METHODS"]

#: Lock factory callables recognised on the RHS of ``self.X = ...``.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

#: Method names treated as mutating their receiver.  Includes this
#: repo's own container mutators (TaskQueue and friends).
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "add",
        "discard",
        "setdefault",
        "sort",
        "reverse",
        "push",
        "put",
        "put_nowait",
        "pop_highest",
        "pop_highest_excluding",
        "mark",
    }
)


def _self_attr(node: ast.expr) -> str | None:
    """``self.X`` -> ``"X"``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_lock_factory(value: ast.expr) -> bool:
    """Whether an assigned value is ``threading.Lock()`` etc."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return False


class _Mutation:
    __slots__ = ("attr", "line", "locked", "method")

    def __init__(self, attr: str, line: int, locked: bool, method: str) -> None:
        self.attr = attr
        self.line = line
        self.locked = locked
        self.method = method


class _MethodScanner(ast.NodeVisitor):
    """Collects mutations of ``self.*`` attributes and lock regions."""

    def __init__(self, lock_attrs: set[str], method: str) -> None:
        self.lock_attrs = lock_attrs
        self.method = method
        self.depth = 0  # nesting depth of `with self.<lock>:` blocks
        self.mutations: list[_Mutation] = []
        #: (line, callee) calls of self.<method>() and their lock state.
        self.self_calls: list[tuple[int, str, bool]] = []

    # -- lock regions ------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        locked = any(
            _self_attr(item.context_expr) in self.lock_attrs
            for item in node.items
            if _self_attr(item.context_expr) is not None
        )
        if locked:
            self.depth += 1
        self.generic_visit(node)
        if locked:
            self.depth -= 1

    # Nested defs get their own scanner pass; don't double-count.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    # -- mutations ---------------------------------------------------------

    def _record(self, attr: str | None, line: int) -> None:
        if attr is not None:
            self.mutations.append(
                _Mutation(attr, line, self.depth > 0, self.method)
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_target(target, node.lineno)
        self.generic_visit(node)

    def _record_target(self, target: ast.expr, line: int) -> None:
        if isinstance(target, ast.Subscript):
            self._record(_self_attr(target.value), line)
        else:
            self._record(_self_attr(target), line)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver_attr = _self_attr(func.value)
            if receiver_attr is not None and func.attr in MUTATING_METHODS:
                self._record(receiver_attr, node.lineno)
            if _self_attr(func) is not None and receiver_attr is None:
                # self.<method>(...) — a direct method call.
                self.self_calls.append((node.lineno, func.attr, self.depth > 0))
        self.generic_visit(node)


def _holds_lock_methods(klass: ast.ClassDef, source_lines: list[str]) -> set[str]:
    """Methods whose ``def`` line carries the holds-lock marker."""
    marked: set[str] = set()
    for node in klass.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            line = source_lines[node.lineno - 1]
            if HOLDS_LOCK_MARK in line:
                marked.add(node.name)
    return marked


def check_lock_discipline(
    tree: ast.Module, source: str, path: str
) -> list[Diagnostic]:
    """Run the RPR003 analysis over every class in ``tree``."""
    source_lines = source.splitlines()
    findings: list[Diagnostic] = []
    for klass in [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]:
        findings.extend(_check_class(klass, source_lines, path))
    return findings


def _check_class(
    klass: ast.ClassDef, source_lines: list[str], path: str
) -> list[Diagnostic]:
    methods = [
        n for n in klass.body if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    # 1. lock attributes.
    lock_attrs: set[str] = set()
    for method in methods:
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        lock_attrs.add(attr)
    if not lock_attrs:
        return []

    holds_lock = _holds_lock_methods(klass, source_lines)

    # 2. collect all mutations and self-calls per method.
    scanners: dict[str, _MethodScanner] = {}
    for method in methods:
        scanner = _MethodScanner(lock_attrs, method.name)
        for stmt in method.body:
            scanner.visit(stmt)
        scanners[method.name] = scanner

    guarded: set[str] = set()
    for scanner in scanners.values():
        for mutation in scanner.mutations:
            if mutation.locked and mutation.attr not in lock_attrs:
                guarded.add(mutation.attr)

    findings: list[Diagnostic] = []
    # 3. unlocked mutations of guarded attributes.
    for name, scanner in scanners.items():
        if name == "__init__" or name in holds_lock:
            continue
        for mutation in scanner.mutations:
            if mutation.attr in guarded and not mutation.locked:
                findings.append(
                    Diagnostic(
                        rule="RPR003",
                        path=path,
                        line=mutation.line,
                        message=f"{klass.name}.{name} mutates lock-guarded "
                        f"attribute self.{mutation.attr} outside a "
                        f"`with self.<lock>:` block (guarded elsewhere "
                        "under "
                        + " / ".join(sorted("self." + a for a in lock_attrs))
                        + "); take the lock, or mark the method "
                        "`# repro-lint: holds-lock`",
                    )
                )
        # 4. holds-lock callees invoked without the lock.
        for line, callee, locked in scanner.self_calls:
            if callee in holds_lock and not locked:
                findings.append(
                    Diagnostic(
                        rule="RPR003",
                        path=path,
                        line=line,
                        message=f"{klass.name}.{name} calls "
                        f"self.{callee}() — marked holds-lock — without "
                        "holding the lock",
                    )
                )
    return findings
