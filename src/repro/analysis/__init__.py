"""Static analysis + runtime invariant checking for the reproduction.

Two halves:

* ``repro lint`` (:mod:`repro.analysis.linter`) — project-specific
  AST lint rules guarding the paper's fragile fast paths: vectorised
  kernels, lock discipline in the speculative schedulers, seeded
  benchmarks, export hygiene.  Run via the CLI subcommand or
  ``python -m repro.analysis``.
* Runtime invariant validators (:mod:`repro.analysis.invariants`) —
  debug-mode checks of the heap upper-bound, triangle-monotonicity and
  shadow-row properties, enabled with ``REPRO_CHECK_INVARIANTS=1`` (or
  ``=full``).

See ``ANALYSIS.md`` at the repository root for the rule catalogue and
the paper section each check guards.
"""

from .diagnostics import Diagnostic, Severity
from .graph import ModuleFacts, ProgramGraph, extract_module_facts
from .invariants import (
    ENV_FLAG,
    InvariantChecker,
    InvariantViolation,
    TriangleMonotonicityValidator,
    check_heap_upper_bound,
    checker_from_env,
    invariant_mode,
    validate_shadow_rows,
)
from .linter import (
    AnalysisResult,
    active_rules,
    analyze_paths,
    collect_files,
    lint_file,
    lint_paths,
    main,
)

__all__ = [
    "Diagnostic",
    "Severity",
    "ModuleFacts",
    "ProgramGraph",
    "extract_module_facts",
    "lint_file",
    "lint_paths",
    "analyze_paths",
    "AnalysisResult",
    "collect_files",
    "active_rules",
    "main",
    "ENV_FLAG",
    "InvariantViolation",
    "InvariantChecker",
    "TriangleMonotonicityValidator",
    "checker_from_env",
    "invariant_mode",
    "check_heap_upper_bound",
    "validate_shadow_rows",
]
