"""Diagnostics substrate for ``repro lint``.

A :class:`Diagnostic` is one finding of one rule at one source
location.  Findings can be *suppressed* at the line or file level with
structured waiver comments, mirroring how the paper's own invariants
admit intentional exceptions (e.g. the scalar reference engine is a
per-cell loop *on purpose* — it is Table 2's "conventional instruction
set" baseline):

``# repro-lint: allow[RPR001] <reason>``
    waives rule ``RPR001`` on this line (trailing comment) or, when the
    comment is a standalone line, on the following line;
``# repro-lint: allow-file[RPR001] <reason>``
    waives rule ``RPR001`` for the whole file (must appear in the first
    ``FILE_WAIVER_WINDOW`` lines);
``# repro-lint: holds-lock``
    not a waiver — marks a method whose *caller* must hold the class
    lock (consumed by the RPR003 lock-discipline detector).

A reason is mandatory: a waiver without one is itself reported
(``RPR000``), so suppressions stay auditable.
"""

from __future__ import annotations

import enum
import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = [
    "Severity",
    "Diagnostic",
    "diagnostic_from_dict",
    "Waivers",
    "parse_waivers",
    "HOLDS_LOCK_MARK",
    "FILE_WAIVER_WINDOW",
]

#: File-level waivers must appear within this many leading lines.
FILE_WAIVER_WINDOW = 12

#: Marker comment consumed by the lock-discipline rule.
HOLDS_LOCK_MARK = "repro-lint: holds-lock"

_WAIVER_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>allow|allow-file)\[(?P<rules>[A-Z0-9, ]+)\]\s*(?P<reason>.*)"
)


class Severity(enum.Enum):
    """How bad a finding is; only errors affect the exit code."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding at one location."""

    rule: str
    path: str
    line: int
    message: str
    severity: Severity = Severity.ERROR
    #: Interprocedural findings carry the call chain that reaches the
    #: defect (``module:qualname`` node ids); empty for per-file rules.
    trace: tuple[str, ...] = ()

    def render(self) -> str:
        """GCC-style one-liner (clickable ``path:line`` in most UIs)."""
        return f"{self.path}:{self.line}: {self.severity} [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        data = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.trace:
            data["trace"] = list(self.trace)
        return data


def diagnostic_from_dict(data: dict) -> Diagnostic:
    """Inverse of :meth:`Diagnostic.to_dict` (used by the facts cache)."""
    return Diagnostic(
        rule=data["rule"],
        path=data["path"],
        line=data["line"],
        message=data["message"],
        severity=Severity(data.get("severity", "error")),
        trace=tuple(data.get("trace", ())),
    )


@dataclass
class Waivers:
    """Parsed suppression state of one source file."""

    #: rule id -> set of waived line numbers (1-based).
    lines: dict[str, set[int]] = field(default_factory=dict)
    #: rule ids waived for the entire file.
    file_rules: set[str] = field(default_factory=set)
    #: diagnostics produced by malformed waivers (missing reason, ...).
    problems: list[Diagnostic] = field(default_factory=list)

    def is_waived(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is suppressed at ``line``."""
        if rule in self.file_rules:
            return True
        return line in self.lines.get(rule, ())


def _comment_tokens(source: str) -> list[tuple[int, str, str]]:
    """``(line, comment_text, full_line)`` for every real comment token.

    Tokenising (rather than regex over raw lines) keeps waiver examples
    inside docstrings and string literals from being treated as live
    suppressions.
    """
    comments: list[tuple[int, str, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string, token.line))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # the linter reports the syntax error separately
    return comments


def parse_waivers(source: str, path: str) -> Waivers:
    """Extract waiver comments from ``source``.

    A standalone waiver comment (a line holding nothing else) applies
    to the next *code* line — intervening comment/blank lines are
    skipped, so a waiver's justification may wrap over several comment
    lines.
    """
    waivers = Waivers()
    source_lines = source.splitlines()

    def next_code_line(after: int) -> int:
        for lineno in range(after, len(source_lines) + 1):
            stripped = source_lines[lineno - 1].strip()
            if stripped and not stripped.startswith("#"):
                return lineno
        return after

    for lineno, comment, text in _comment_tokens(source):
        match = _WAIVER_RE.search(comment)
        if match is None:
            continue
        rules = [r.strip() for r in match.group("rules").split(",") if r.strip()]
        reason = match.group("reason").strip()
        if not reason:
            waivers.problems.append(
                Diagnostic(
                    rule="RPR000",
                    path=path,
                    line=lineno,
                    message="waiver comment without a reason "
                    "(write `# repro-lint: allow[RPRnnn] why`)",
                )
            )
            continue
        standalone = text.lstrip().startswith("#")
        target = next_code_line(lineno + 1) if standalone else lineno
        for rule in rules:
            if match.group("kind") == "allow-file":
                if lineno <= FILE_WAIVER_WINDOW:
                    waivers.file_rules.add(rule)
                else:
                    waivers.problems.append(
                        Diagnostic(
                            rule="RPR000",
                            path=path,
                            line=lineno,
                            message=f"allow-file[{rule}] must appear in the "
                            f"first {FILE_WAIVER_WINDOW} lines",
                        )
                    )
            else:
                waivers.lines.setdefault(rule, set()).update((lineno, target))
    return waivers
