"""Runtime invariant validators (``REPRO_CHECK_INVARIANTS``).

The algorithm's million-fold speedup rests on three fragile claims:

* **Heap upper bounds** (§3): a task's cached score — possibly computed
  under an *older* override triangle — is an upper bound on its fresh
  score under the current triangle, because newer triangles only
  override more cells and overriding never raises a score.  Best-first
  acceptance is exact only while this holds.
* **Override-triangle monotonicity** (§3): accepted cells only ever
  flip False → True; nothing un-marks a pair, and the version counter
  advances by exactly one per acceptance.
* **Shadow-row validity** (Appendix A): a realignment may end only in
  bottom-row cells whose value is *unchanged* from the first-pass
  cached row; changed cells are shadow alignments rerouted around an
  accepted path.

None of these fail loudly on their own — they fail as silently wrong
top alignments.  Setting ``REPRO_CHECK_INVARIANTS=1`` (cheap checks)
or ``REPRO_CHECK_INVARIANTS=full`` (adds O(n·cells) fresh-score
re-verification of every queued upper bound after each acceptance)
makes every execution mode — sequential, lane-grouped, threaded,
distributed — self-verifying; violations raise
:class:`InvariantViolation`.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..core.tasks import NEVER_ALIGNED

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.result import TopAlignment
    from ..core.tasks import Task
    from ..core.topalign import TopAlignmentState

__all__ = [
    "ENV_FLAG",
    "InvariantViolation",
    "invariant_mode",
    "checker_from_env",
    "InvariantChecker",
    "TriangleMonotonicityValidator",
    "validate_shadow_rows",
    "check_heap_upper_bound",
]

#: Environment variable controlling the checks.
ENV_FLAG = "REPRO_CHECK_INVARIANTS"

#: Absolute tolerance for score comparisons.  Scores are integral under
#: the recommended matrices, so any tolerance well under 1 is safe.
_TOL = 1e-6

_OFF = {"", "0", "off", "false", "no"}
_FULL = {"full", "2", "all"}


class InvariantViolation(AssertionError):
    """A checked algorithmic invariant does not hold.

    Violations cross process boundaries (a worker's shard run, a
    cluster node's lease) and must survive a pickle round-trip, hence
    the explicit ``__reduce__``: the default ``BaseException`` protocol
    replays ``cls(*self.args)``, which does not match this two-argument
    constructor.
    """

    def __init__(self, invariant: str, message: str) -> None:
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant
        self.detail = message

    def __reduce__(self):
        return (type(self), (self.invariant, self.detail))


def invariant_mode() -> str | None:
    """``None`` (off), ``"cheap"`` or ``"full"``, from the environment."""
    raw = os.environ.get(ENV_FLAG, "").strip().lower()
    if raw in _OFF:
        return None
    return "full" if raw in _FULL else "cheap"


def checker_from_env(state: "TopAlignmentState") -> "InvariantChecker | None":
    """An :class:`InvariantChecker` bound to ``state``, if enabled."""
    mode = invariant_mode()
    if mode is None:
        return None
    return InvariantChecker(state, mode=mode)


# ---------------------------------------------------------------------------
# individual validators (usable standalone from tests / fuzzers)
# ---------------------------------------------------------------------------


class TriangleMonotonicityValidator:
    """Checks that an override triangle only ever gains marked pairs.

    Keeps a snapshot of the marked-pair set; each :meth:`validate` call
    compares the triangle against the snapshot and then advances it.
    """

    def __init__(self, triangle) -> None:
        self.pairs: set[tuple[int, int]] = set(triangle)
        self.version: int = triangle.version

    def validate(self, triangle) -> set[tuple[int, int]]:
        """Raise unless the triangle grew monotonically; returns new pairs."""
        current = set(triangle)
        lost = self.pairs - current
        if lost:
            raise InvariantViolation(
                "triangle-monotonic",
                f"{len(lost)} previously marked pair(s) were un-marked "
                f"(e.g. {sorted(lost)[:3]}); accepted cells may only flip "
                "False->True",
            )
        if triangle.version < self.version:
            raise InvariantViolation(
                "triangle-monotonic",
                f"triangle version went backwards: {self.version} -> "
                f"{triangle.version}",
            )
        if triangle.marked_count != len(current):
            raise InvariantViolation(
                "triangle-monotonic",
                f"marked_count={triangle.marked_count} disagrees with the "
                f"{len(current)} pairs the triangle iterates",
            )
        for i, j in current - self.pairs:
            if not (1 <= i < j <= triangle.m):
                raise InvariantViolation(
                    "triangle-monotonic",
                    f"newly marked pair ({i}, {j}) outside the triangle "
                    f"1 <= i < j <= {triangle.m}",
                )
        fresh = current - self.pairs
        self.pairs = current
        self.version = triangle.version
        return fresh


def validate_shadow_rows(
    store,
    r: int,
    fresh_row: np.ndarray,
    *,
    claimed_mask: np.ndarray | None = None,
    claimed_score: float | None = None,
) -> None:
    """Check Appendix A shadow-rejection for one realignment.

    Recomputes the valid-endpoint mask independently of the store
    (``fresh == cached``) and verifies the store's answers against it:
    ``claimed_mask`` (if given) must match cell-for-cell, and
    ``claimed_score`` (if given) must be the maximum over unchanged
    cells — 0.0 when every cell changed.
    """
    original = np.asarray(store.get(r), dtype=np.float64)
    fresh = np.asarray(fresh_row, dtype=np.float64)
    if fresh.shape != original.shape:
        raise InvariantViolation(
            "shadow-rows",
            f"split r={r}: fresh bottom row has shape {fresh.shape}, "
            f"cached first-pass row has {original.shape}",
        )
    expected_mask = fresh == original
    if claimed_mask is not None and not np.array_equal(
        np.asarray(claimed_mask, dtype=bool), expected_mask
    ):
        bad = int(np.flatnonzero(np.asarray(claimed_mask) != expected_mask)[0])
        raise InvariantViolation(
            "shadow-rows",
            f"split r={r}: validity mask wrong at column {bad} — a cell is "
            "valid iff its value is unchanged from the first pass",
        )
    expected_score = (
        float(fresh[expected_mask].max()) if expected_mask.any() else 0.0
    )
    if claimed_score is not None and not math.isclose(
        claimed_score, expected_score, abs_tol=_TOL
    ):
        raise InvariantViolation(
            "shadow-rows",
            f"split r={r}: claimed realignment score {claimed_score} != "
            f"max over unchanged cells {expected_score} (shadow alignments "
            "must not contribute)",
        )


def check_heap_upper_bound(
    state: "TopAlignmentState", task: "Task", *, tol: float = _TOL
) -> float:
    """Check one task's cached score against its fresh score.

    Recomputes the split under the *current* triangle (with shadow
    rejection, exactly as :meth:`TopAlignmentState.align_task` would)
    and raises unless ``task.score >= fresh``.  Returns the fresh
    score.  O(cells) — debug/fuzzing use only.
    """
    row = state.engine.last_row(state.problem_for(task.r))
    if task.r in state.bottom_rows:
        fresh = state.bottom_rows.score_of(task.r, row)
    else:
        fresh = float(row.max())
    if task.score + tol < fresh:
        raise InvariantViolation(
            "heap-upper-bound",
            f"task r={task.r}: cached score {task.score} (triangle version "
            f"{task.aligned_with}) is below its fresh score {fresh} under "
            f"triangle version {state.n_found}; stale scores must be upper "
            "bounds for best-first acceptance to be exact",
        )
    return fresh


# ---------------------------------------------------------------------------
# the per-state checker the hot paths call
# ---------------------------------------------------------------------------


class InvariantChecker:
    """Bundles the validators for one :class:`TopAlignmentState`.

    Hook points (called by the sequential loop, the threaded scheduler
    and the distributed master when ``REPRO_CHECK_INVARIANTS`` is set):

    * :meth:`guard_task` — structural checks on every queue insert;
    * :meth:`after_align` — score monotonicity + shadow-row validity;
    * :meth:`after_prune` — pruned-bound dominance (sampled exhaustive
      refill of the skipped matrix);
    * :meth:`after_accept` — triangle monotonicity + non-overlap;
    * :meth:`verify_upper_bounds` — full-mode fresh-score sweep.
    """

    def __init__(self, state: "TopAlignmentState", mode: str = "cheap") -> None:
        if mode not in ("cheap", "full"):
            raise ValueError("mode must be 'cheap' or 'full'")
        self.state = state
        self.mode = mode
        self.triangle_validator = TriangleMonotonicityValidator(state.triangle)
        #: Number of individual invariant checks executed (observability).
        self.checks = 0
        #: Prune events seen, for the cheap-mode sampling stride.
        self._prunes_seen = 0

    # -- queue guard (wired into TaskQueue) --------------------------------

    def guard_task(self, task: "Task") -> None:
        """Structural sanity of a task entering the queue."""
        self.checks += 1
        if math.isnan(task.score):
            raise InvariantViolation(
                "task-structure", f"task r={task.r} has NaN score"
            )
        if task.score < 0.0:
            raise InvariantViolation(
                "task-structure",
                f"task r={task.r} has negative score {task.score}; local "
                "alignment scores are clamped at zero",
            )
        if not 1 <= task.r < self.state.m:
            raise InvariantViolation(
                "task-structure",
                f"task split r={task.r} outside 1..{self.state.m - 1}",
            )
        if task.aligned_with != NEVER_ALIGNED and (
            task.aligned_with < 0 or task.aligned_with > self.state.n_found
        ):
            raise InvariantViolation(
                "task-structure",
                f"task r={task.r} claims triangle version "
                f"{task.aligned_with}, but only 0..{self.state.n_found} "
                "exist",
            )

    # -- alignment hook ----------------------------------------------------

    def after_align(
        self,
        task: "Task",
        row: np.ndarray,
        *,
        prev_score: float,
        prev_version: int,
    ) -> None:
        """Validate one (re)alignment that just updated ``task``."""
        self.checks += 1
        if task.score > prev_score + _TOL:
            raise InvariantViolation(
                "heap-upper-bound",
                f"task r={task.r}: realignment raised the score "
                f"{prev_score} -> {task.score} (previous version "
                f"{prev_version}, now {task.aligned_with}); a growing "
                "triangle can only lower scores, so the cached value was "
                "not an upper bound",
            )
        if task.r in self.state.bottom_rows:
            validate_shadow_rows(
                self.state.bottom_rows, task.r, row, claimed_score=task.score
            )

    # -- prune hook --------------------------------------------------------

    def after_prune(self, task: "Task", gate, *, prev_score: float) -> None:
        """Validate one pruned fill (see :mod:`repro.align.pruning`).

        The cheap check — a prune may only *lower* the task's heap
        score — always runs.  The expensive check refills the skipped
        matrix exhaustively (gate-free, under the same triangle view
        the pruned fill would have used) and asserts the recorded
        bound dominates the true score; it runs on every prune in
        ``full`` mode and on a deterministic 1-in-7 sample otherwise.
        """
        self.checks += 1
        self._prunes_seen += 1
        if task.score > prev_score + _TOL:
            raise InvariantViolation(
                "prune-bound",
                f"task r={task.r}: prune raised the score {prev_score} -> "
                f"{task.score}; a recorded bound must never exceed the "
                "previous upper bound",
            )
        if self.mode != "full" and self._prunes_seen % 7 != 1:
            return
        state = self.state
        first = task.r not in state.bottom_rows
        row = state.engine.last_row(state.problem_for(task.r, with_override=not first))
        true_score = (
            float(row.max()) if first else state.bottom_rows.score_of(task.r, row)
        )
        if task.score + _TOL < true_score:
            raise InvariantViolation(
                "prune-bound",
                f"task r={task.r}: recorded prune bound {task.score} is "
                f"below the true fill score {true_score} (triangle version "
                f"{state.n_found}); prune bounds must dominate the scores "
                "they skip",
            )

    # -- acceptance hook ---------------------------------------------------

    def after_accept(self, alignment: "TopAlignment") -> None:
        """Validate the acceptance that just marked the triangle."""
        self.checks += 1
        accepted = set(alignment.pairs)
        overlap = accepted & self.triangle_validator.pairs
        if overlap:
            raise InvariantViolation(
                "non-overlap",
                f"top alignment #{alignment.index} re-uses "
                f"{len(overlap)} already-accepted pair(s) "
                f"(e.g. {sorted(overlap)[:3]}); top alignments must be "
                "pairwise disjoint",
            )
        prev_y, prev_x = 0, 0
        for y, x in alignment.pairs:
            if not (y <= alignment.r < x):
                raise InvariantViolation(
                    "non-overlap",
                    f"top alignment #{alignment.index} pair ({y}, {x}) does "
                    f"not straddle its split r={alignment.r}",
                )
            if y <= prev_y or x <= prev_x:
                raise InvariantViolation(
                    "non-overlap",
                    f"top alignment #{alignment.index} pairs are not "
                    f"strictly increasing at ({y}, {x})",
                )
            prev_y, prev_x = y, x
        fresh = self.triangle_validator.validate(self.state.triangle)
        if not accepted <= self.triangle_validator.pairs:
            raise InvariantViolation(
                "triangle-monotonic",
                f"top alignment #{alignment.index}'s pairs were not all "
                "marked in the triangle",
            )
        del fresh  # newly marked set; superset check above suffices

    # -- full-mode sweep ---------------------------------------------------

    def verify_upper_bounds(self, tasks: Iterable["Task"]) -> int:
        """Re-verify every queued upper bound against a fresh score.

        Returns the number of tasks checked.  O(n·cells); only wired
        up in ``full`` mode.
        """
        n = 0
        for task in tasks:
            if task.aligned_with == NEVER_ALIGNED:
                continue  # +inf placeholder, trivially an upper bound
            check_heap_upper_bound(self.state, task)
            n += 1
        self.checks += n
        return n
