"""Project-specific AST lint rules (``repro lint``).

Each rule guards one way the reproduction has been observed (or is
expected) to rot — see ``ANALYSIS.md`` for the paper section each rule
protects.  Rules are pure functions over one file's AST; the two rules
that need more context live in their own modules (lock discipline in
:mod:`repro.analysis.locks`, export consistency in
:mod:`repro.analysis.exports`).

Rule ids
--------
``RPR001`` per-cell Python loop in an ``align/`` kernel
``RPR002`` numpy matrix constructor without an explicit ``dtype``
``RPR004`` unseeded randomness in ``benchmarks/`` / ``simulate/``
``RPR006`` bare ``except:``
``RPR007`` PYTHONPATH-unsafe absolute self-import inside the package
``RPR008`` O(n) list operation (``insert(0, ...)``, ``in``-on-list) in a loop
``RPR010`` blocking call in a ``repro.service`` request-handling path
``RPR011`` wall-clock ``time.time()`` in an instrumented performance path
``RPR012`` raw socket / unbounded ``recv``/``accept`` outside ``cluster/transport``
``RPR017`` ``repro.align`` import inside the ``repro.index`` layer
``RPR018`` direct spool-queue write in ``repro.service`` (bypasses the gateway)
``RPR019`` ad-hoc threshold early-exit in ``align/`` (bypasses the PruneGate)
``RPR020`` ``repro.align`` import inside the ``repro.annot`` layer
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Callable, Iterator

from .diagnostics import Diagnostic

__all__ = ["Rule", "FILE_RULES", "iter_file_rules"]

#: Signature of a per-file rule: (tree, path) -> findings.
Rule = Callable[[ast.Module, str], list[Diagnostic]]

#: numpy array constructors whose dtype should always be spelled out in
#: kernel/matrix code (implicit float64/int mixing silently changes the
#: engines' value domain — the paper computed in 16-bit integers).
_NUMPY_CONSTRUCTORS = {"zeros", "ones", "empty", "full"}

#: Legacy global-state numpy RNG entry points (non-reproducible across
#: call sites; benchmarks must thread an explicit seeded Generator).
_NUMPY_GLOBAL_RNG = {
    "random",
    "rand",
    "randn",
    "randint",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "poisson",
    "exponential",
}

#: stdlib ``random`` module functions that draw from the global RNG.
_STDLIB_RNG = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "betavariate",
    "expovariate",
}

#: list methods whose presence with ``insert(0, ...)`` semantics makes a
#: hot loop quadratic.
_MIN_PER_CELL_SUBSCRIPTS = 3


def _parts(path: str) -> set[str]:
    return set(Path(path).parts)


def _in_dir(path: str, *names: str) -> bool:
    parts = _parts(path)
    return any(name in parts for name in names)


def _is_test_file(path: str) -> bool:
    """Tests build tiny expected arrays; kernel-perf rules skip them."""
    name = Path(path).name
    return (
        "tests" in _parts(path)
        or name.startswith("test_")
        or name == "conftest.py"
    )


def _numpy_aliases(tree: ast.Module) -> set[str]:
    """Module aliases bound to numpy (``np``, ``numpy``, ...)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _constructor_names(tree: ast.Module) -> set[str]:
    """Names bound by ``from numpy import zeros, ...``."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "numpy":
            for alias in node.names:
                if alias.name in _NUMPY_CONSTRUCTORS:
                    names.add(alias.asname or alias.name)
    return names


# ---------------------------------------------------------------------------
# RPR001 — per-cell Python loops in alignment kernels
# ---------------------------------------------------------------------------


def _element_subscripts_with(node: ast.AST, var: str) -> int:
    """Count element (non-slice) subscripts whose index mentions ``var``."""
    count = 0
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Subscript):
            continue
        index = sub.slice
        if isinstance(index, ast.Slice):
            continue
        if isinstance(index, ast.Tuple) and any(
            isinstance(elt, ast.Slice) for elt in index.elts
        ):
            continue
        if any(isinstance(n, ast.Name) and n.id == var for n in ast.walk(index)):
            count += 1
    return count


def _is_range_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
    )


def rule_per_cell_loop(tree: ast.Module, path: str) -> list[Diagnostic]:
    """RPR001: nested Python ``for``-``range`` loops doing per-cell work.

    The paper's million-fold speedup starts from keeping the Equation 1
    recurrence out of the Python interpreter (row-vectorised or
    lane-batched); a nested loop that touches matrix cells one at a
    time re-introduces the "conventional instruction set" baseline.
    Intentional scalar references carry a waiver.
    """
    if not _in_dir(path, "align") or _is_test_file(path):
        return []
    findings: list[Diagnostic] = []

    def visit(node: ast.AST, for_depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            depth = for_depth
            if isinstance(child, ast.For):
                if (
                    for_depth >= 1
                    and _is_range_call(child.iter)
                    and isinstance(child.target, ast.Name)
                    and _element_subscripts_with(child, child.target.id)
                    >= _MIN_PER_CELL_SUBSCRIPTS
                ):
                    findings.append(
                        Diagnostic(
                            rule="RPR001",
                            path=path,
                            line=child.lineno,
                            message="per-cell Python loop in an alignment "
                            "kernel; vectorise the inner dimension "
                            "(numpy row ops / lane batch) or waive with a "
                            "reason if this is a reference implementation",
                        )
                    )
                depth = for_depth + 1
            visit(child, depth)

    visit(tree, 0)
    return findings


# ---------------------------------------------------------------------------
# RPR002 — implicit dtype in matrix construction
# ---------------------------------------------------------------------------


def rule_implicit_dtype(tree: ast.Module, path: str) -> list[Diagnostic]:
    """RPR002: ``np.zeros``/``ones``/``empty``/``full`` without ``dtype=``.

    Mixing implicit float64 with the lane engine's int16/int32 working
    dtypes silently changes saturation behaviour (§4.1's 16-bit
    overflow discussion), so matrix constructors in kernel and core
    code must pin their dtype.
    """
    if not _in_dir(path, "align", "core") or _is_test_file(path):
        return []
    np_aliases = _numpy_aliases(tree)
    direct = _constructor_names(tree)
    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        hit = False
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _NUMPY_CONSTRUCTORS
            and isinstance(func.value, ast.Name)
            and func.value.id in np_aliases
        ):
            hit = True
        elif isinstance(func, ast.Name) and func.id in direct:
            hit = True
        if hit and not any(kw.arg == "dtype" for kw in node.keywords):
            name = func.attr if isinstance(func, ast.Attribute) else func.id
            findings.append(
                Diagnostic(
                    rule="RPR002",
                    path=path,
                    line=node.lineno,
                    message=f"np.{name}(...) without an explicit dtype= in "
                    "matrix construction; implicit dtypes mix float64 into "
                    "integer lane kernels",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# RPR004 — unseeded randomness
# ---------------------------------------------------------------------------


def rule_unseeded_random(tree: ast.Module, path: str) -> list[Diagnostic]:
    """RPR004: randomness without an explicit seed in benchmark/simulator code.

    Every benchmark table and simulator trace in this repo is a
    reproduction artifact; a run that cannot be replayed bit-for-bit
    cannot be compared against the paper's Tables 1-2 / Figure 8.
    """
    if not _in_dir(path, "benchmarks", "simulate"):
        return []
    np_aliases = _numpy_aliases(tree)
    random_aliases: set[str] = set()
    seeds_global = False
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    random_aliases.add(alias.asname or "random")
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "seed"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in random_aliases
        ):
            seeds_global = True

    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        # np.random.<legacy>(...) — global-state numpy RNG.
        if (
            isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in np_aliases
            and func.attr in _NUMPY_GLOBAL_RNG
        ):
            findings.append(
                Diagnostic(
                    rule="RPR004",
                    path=path,
                    line=node.lineno,
                    message=f"np.random.{func.attr}(...) uses the global "
                    "numpy RNG; thread an explicit "
                    "np.random.default_rng(seed) instead",
                )
            )
        # np.random.default_rng() with no seed.
        elif (
            func.attr == "default_rng"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and not node.args
            and not node.keywords
        ):
            findings.append(
                Diagnostic(
                    rule="RPR004",
                    path=path,
                    line=node.lineno,
                    message="default_rng() without a seed is not "
                    "reproducible; pass an explicit seed",
                )
            )
        # stdlib random.<fn>() on the (unseeded) global RNG.
        elif (
            isinstance(func.value, ast.Name)
            and func.value.id in random_aliases
            and func.attr in _STDLIB_RNG
            and not seeds_global
        ):
            findings.append(
                Diagnostic(
                    rule="RPR004",
                    path=path,
                    line=node.lineno,
                    message=f"random.{func.attr}() draws from the unseeded "
                    "global RNG; seed it or use random.Random(seed)",
                )
            )
        # random.Random() with no seed.
        elif (
            func.attr == "Random"
            and isinstance(func.value, ast.Name)
            and func.value.id in random_aliases
            and not node.args
            and not node.keywords
        ):
            findings.append(
                Diagnostic(
                    rule="RPR004",
                    path=path,
                    line=node.lineno,
                    message="random.Random() without a seed is not "
                    "reproducible; pass an explicit seed",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# RPR006 — bare except
# ---------------------------------------------------------------------------


def rule_bare_except(tree: ast.Module, path: str) -> list[Diagnostic]:
    """RPR006: ``except:`` with no exception type.

    A bare except swallows KeyboardInterrupt/SystemExit and — worse
    here — the invariant-checker's violations, turning a broken
    upper-bound into silently wrong output.
    """
    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(
                Diagnostic(
                    rule="RPR006",
                    path=path,
                    line=node.lineno,
                    message="bare `except:` swallows SystemExit and "
                    "invariant violations; catch a concrete exception type",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# RPR007 — PYTHONPATH-unsafe self-imports
# ---------------------------------------------------------------------------


def _inside_package(path: str, package: str = "repro") -> bool:
    """Whether ``path`` sits inside a package directory named ``package``."""
    p = Path(path).resolve()
    for parent in p.parents:
        if parent.name == package and (parent / "__init__.py").exists():
            return True
    return False


def rule_absolute_self_import(tree: ast.Module, path: str) -> list[Diagnostic]:
    """RPR007: absolute ``import repro...`` inside the package itself.

    Modules inside ``src/repro`` must use relative imports — absolute
    self-imports only resolve when ``src`` happens to be on
    ``PYTHONPATH``, and they can double-import the package under two
    names (breaking engine-registry and isinstance identity).
    """
    if not _inside_package(path):
        return []
    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        offending = None
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    offending = alias.name
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            if node.module == "repro" or node.module.startswith("repro."):
                offending = node.module
        if offending is not None:
            findings.append(
                Diagnostic(
                    rule="RPR007",
                    path=path,
                    line=node.lineno,
                    message=f"absolute self-import of {offending!r} inside "
                    "the package; use a relative import so the module is "
                    "PYTHONPATH-layout independent",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# RPR008 — accidentally-quadratic list operations in loops
# ---------------------------------------------------------------------------


def _walk_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function/class scopes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # a nested scope: its names do not alias ours
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _list_valued_names(body: list[ast.stmt]) -> set[str]:
    """Names assigned a list display / ``list(...)`` call in this scope."""
    names: set[str] = set()
    for node in _walk_scope(body):
        if isinstance(node, ast.Assign) and isinstance(
            node.value, (ast.List, ast.ListComp)
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == "list"
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _loops(body: list[ast.stmt]) -> Iterator[ast.AST]:
    for node in _walk_scope(body):
        if isinstance(node, (ast.For, ast.While)):
            yield node


def rule_quadratic_list_op(tree: ast.Module, path: str) -> list[Diagnostic]:
    """RPR008: ``list.insert(0, ...)`` and ``in``-on-list inside loops.

    The best-first loop runs O(n) iterations per acceptance; an O(n)
    list operation inside it silently turns the §3 bookkeeping
    quadratic.  ``collections.deque`` / ``set`` are the drop-ins.
    """
    findings: list[Diagnostic] = []
    # insert(0, ...) anywhere — there is no good reason for it.
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "insert"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == 0
        ):
            findings.append(
                Diagnostic(
                    rule="RPR008",
                    path=path,
                    line=node.lineno,
                    message="list.insert(0, ...) is O(n); use "
                    "collections.deque.appendleft or append+reverse",
                )
            )
    # `x in somelist` inside a loop, where somelist is a local list.
    for scope in ast.walk(tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            continue
        body = scope.body
        list_names = _list_valued_names(body)
        if not list_names:
            continue
        for loop in _loops(body):
            for node in ast.walk(loop):
                if not isinstance(node, ast.Compare):
                    continue
                for op, comparator in zip(node.ops, node.comparators):
                    if (
                        isinstance(op, (ast.In, ast.NotIn))
                        and isinstance(comparator, ast.Name)
                        and comparator.id in list_names
                    ):
                        findings.append(
                            Diagnostic(
                                rule="RPR008",
                                path=path,
                                line=node.lineno,
                                message=f"membership test against list "
                                f"{comparator.id!r} inside a loop is O(n) "
                                "per probe; use a set",
                            )
                        )
    return findings


# ---------------------------------------------------------------------------
# RPR010 — blocking calls in service request-handling paths
# ---------------------------------------------------------------------------

def _is_handler_function(node: ast.AST) -> bool:
    """BaseHTTPRequestHandler verb methods and ``handle*`` entry points."""
    return isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
        node.name.startswith("do_") or node.name.startswith("handle")
    )


def _is_handler_class(node: ast.AST) -> bool:
    """A class whose bases name a request handler (``*Handler``)."""
    if not isinstance(node, ast.ClassDef):
        return False
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if name.endswith("Handler"):
            return True
    return False


def _time_sleep_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(module aliases of ``time``, direct names bound to ``time.sleep``)."""
    modules: set[str] = set()
    direct: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    modules.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "sleep":
                    direct.add(alias.asname or "sleep")
    return modules, direct


def _receiver_tail(node: ast.expr) -> str:
    """Last name component of a call receiver (``self.jobs_queue`` -> ``jobs_queue``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def rule_blocking_in_handler(tree: ast.Module, path: str) -> list[Diagnostic]:
    """RPR010: blocking calls inside ``repro.service`` request handlers.

    The HTTP server handles each request on a pool thread; a handler
    that parks in ``time.sleep`` or an unbounded ``Queue.get()`` ties
    up a thread indefinitely and turns slow clients into denial of
    service.  Intentional bounded waits (e.g. the event-stream tail
    poll, which re-checks a deadline every iteration) carry a waiver:
    ``# repro-lint: allow[RPR010] reason``.
    """
    if not _in_dir(path, "service") or _is_test_file(path):
        return []
    modules, direct = _time_sleep_aliases(tree)
    findings: list[Diagnostic] = []

    def check_scope(fn: ast.AST) -> None:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_sleep = (
                isinstance(func, ast.Attribute)
                and func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id in modules
            ) or (isinstance(func, ast.Name) and func.id in direct)
            if is_sleep:
                findings.append(
                    Diagnostic(
                        rule="RPR010",
                        path=path,
                        line=node.lineno,
                        message="time.sleep in a request-handling path "
                        "blocks a server thread; poll with a deadline and "
                        "waive (`# repro-lint: allow[RPR010] reason`) if "
                        "the wait is intentionally bounded",
                    )
                )
                continue
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "get"
                and "queue" in _receiver_tail(func.value).lower()
                and not node.args
                and not any(
                    kw.arg in ("timeout", "block") for kw in node.keywords
                )
            ):
                findings.append(
                    Diagnostic(
                        rule="RPR010",
                        path=path,
                        line=node.lineno,
                        message="unbounded Queue.get() in a request-handling "
                        "path blocks a server thread forever; pass a timeout "
                        "or block=False",
                    )
                )

    def visit(node: ast.AST, in_handler_class: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_handler_function(child) or in_handler_class:
                    check_scope(child)
                    continue  # check_scope walked the whole body already
                visit(child, in_handler_class)
            elif isinstance(child, ast.ClassDef):
                visit(child, in_handler_class or _is_handler_class(child))
            else:
                visit(child, in_handler_class)

    visit(tree, False)
    return findings


# ---------------------------------------------------------------------------
# RPR011 — wall-clock time.time() in instrumented performance paths


#: Directories whose durations feed RunStats and the repro.obs
#: histograms.  ``service`` is deliberately absent: job records carry
#: genuine wall-clock epoch timestamps (created/started/finished).
_MONOTONIC_DIRS = ("align", "core", "parallel", "bench", "obs", "benchmarks")


def _time_time_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(module aliases of ``time``, direct names bound to ``time.time``)."""
    modules: set[str] = set()
    direct: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    modules.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    direct.add(alias.asname or "time")
    return modules, direct


def rule_wall_clock_in_hot_path(tree: ast.Module, path: str) -> list[Diagnostic]:
    """RPR011: ``time.time()`` where durations feed metrics.

    Every duration in the instrumented paths (the drivers, the engines,
    the bench harness, ``repro.obs`` itself) ends up in ``RunStats`` or
    a latency histogram.  The wall clock can step backwards under NTP
    and silently corrupt those numbers; ``time.perf_counter`` (or
    ``time.monotonic``) cannot.  A genuine need for an epoch timestamp
    in these paths carries a waiver:
    ``# repro-lint: allow[RPR011] reason``.
    """
    if not _in_dir(path, *_MONOTONIC_DIRS) or _is_test_file(path):
        return []
    modules, direct = _time_time_aliases(tree)
    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_wall_clock = (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id in modules
        ) or (isinstance(func, ast.Name) and func.id in direct)
        if is_wall_clock:
            findings.append(
                Diagnostic(
                    rule="RPR011",
                    path=path,
                    line=node.lineno,
                    message="time.time() in an instrumented path: the wall "
                    "clock can step backwards and corrupt durations; use "
                    "time.perf_counter() (or waive with "
                    "`# repro-lint: allow[RPR011] reason` for a genuine "
                    "epoch timestamp)",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# RPR012 — socket discipline in the cluster package
# ---------------------------------------------------------------------------

#: The one module allowed to touch raw sockets (it wraps them in
#: timeout-carrying Channel/Listener objects).
_TRANSPORT_MODULE = "transport.py"

#: Socket methods that block forever unless a timeout bounds them.
_BLOCKING_SOCKET_METHODS = frozenset({"recv", "recvfrom", "recv_into", "accept"})


def _socket_aliases(tree: ast.Module) -> set[str]:
    """Module aliases bound to the stdlib ``socket`` module."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "socket":
                    aliases.add(alias.asname or "socket")
    return aliases


def rule_socket_discipline(tree: ast.Module, path: str) -> list[Diagnostic]:
    """RPR012: raw sockets / unbounded blocking calls outside the transport.

    A distributed run that hangs silently is worse than one that fails
    loudly: a node blocked forever in ``recv`` holds a lease until the
    deadline reaper steals it back, hiding the real fault.  All raw
    socket handling in ``repro.cluster`` therefore lives in
    ``transport.py``, whose Channel/Listener/connect wrappers carry
    explicit timeouts; every other cluster module must (a) never
    construct sockets directly and (b) pass ``timeout=`` to each
    ``recv``/``accept`` call.  Intentional exceptions carry a waiver:
    ``# repro-lint: allow[RPR012] reason``.
    """
    if not _in_dir(path, "cluster") or _is_test_file(path):
        return []
    if Path(path).name == _TRANSPORT_MODULE:
        return []
    socket_aliases = _socket_aliases(tree)
    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if (
            isinstance(func.value, ast.Name)
            and func.value.id in socket_aliases
            and func.attr in ("socket", "create_connection", "create_server")
        ):
            findings.append(
                Diagnostic(
                    rule="RPR012",
                    path=path,
                    line=node.lineno,
                    message=f"socket.{func.attr}(...) outside the transport "
                    "layer; construct connections through "
                    "repro.cluster.transport (Channel/Listener/connect), "
                    "whose sockets carry explicit timeouts",
                )
            )
        elif func.attr in _BLOCKING_SOCKET_METHODS and not any(
            kw.arg == "timeout" for kw in node.keywords
        ):
            findings.append(
                Diagnostic(
                    rule="RPR012",
                    path=path,
                    line=node.lineno,
                    message=f".{func.attr}(...) without an explicit timeout= "
                    "outside the transport layer can hang a node forever; "
                    "pass timeout= (or waive with "
                    "`# repro-lint: allow[RPR012] reason`)",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# RPR017 — layering: the index tier must not reach into align/
# ---------------------------------------------------------------------------


def rule_index_layer_imports(tree: ast.Module, path: str) -> list[Diagnostic]:
    """RPR017: ``repro.align`` imports inside ``repro/index/``.

    The k-mer index tier exists *below* the O(n^3) pipeline: it must be
    able to bound and route work without ever paying for an alignment,
    and its seeded heap bounds must stay provable from the exchange
    matrix alone.  An ``align/`` import here would let alignment
    results leak into routing decisions, silently turning the
    "provably >= true top score" guarantee into a heuristic.  The tier
    therefore only sees sequences, alphabets and exchange matrices;
    anything needing an engine belongs in ``repro.core``.  A deliberate
    exception carries a waiver: ``# repro-lint: allow[RPR017] reason``.
    """
    if not _in_dir(path, "index") or _is_test_file(path):
        return []
    findings: list[Diagnostic] = []

    def flag(node: ast.AST, imported: str) -> None:
        findings.append(
            Diagnostic(
                rule="RPR017",
                path=path,
                line=node.lineno,
                message=f"import of {imported} inside the repro.index layer; "
                "the index tier routes work *before* any alignment runs and "
                "must depend only on sequences/scoring — move "
                "engine-dependent logic to repro.core (or waive with "
                "`# repro-lint: allow[RPR017] reason`)",
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.align" or alias.name.startswith(
                    "repro.align."
                ):
                    flag(node, alias.name)
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and (
                module == "repro.align" or module.startswith("repro.align.")
            ):
                flag(node, module)
            elif node.level >= 2 and (
                module == "align" or module.startswith("align.")
            ):
                flag(node, f"{'.' * node.level}{module}")
            elif node.level >= 2 and not module:
                for alias in node.names:
                    if alias.name == "align":
                        flag(node, f"{'.' * node.level} align")
    return findings


# ---------------------------------------------------------------------------
# RPR020 — layering: the annotation layer must not reach into align/
# ---------------------------------------------------------------------------


def _align_imports(tree: ast.Module) -> list[tuple[ast.AST, str]]:
    """Every ``repro.align`` import in ``tree`` (absolute or relative)."""
    hits: list[tuple[ast.AST, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.align" or alias.name.startswith(
                    "repro.align."
                ):
                    hits.append((node, alias.name))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and (
                module == "repro.align" or module.startswith("repro.align.")
            ):
                hits.append((node, module))
            elif node.level >= 2 and (
                module == "align" or module.startswith("align.")
            ):
                hits.append((node, f"{'.' * node.level}{module}"))
            elif node.level >= 2 and not module:
                for alias in node.names:
                    if alias.name == "align":
                        hits.append((node, f"{'.' * node.level} align"))
    return hits


def rule_annot_layer_imports(tree: ast.Module, path: str) -> list[Diagnostic]:
    """RPR020: ``repro.align`` imports inside ``repro/annot/``.

    The annotation layer is a pure *renderer*: it turns finished scan
    results and the structured family models of ``repro.core.report``
    into GFF3 / profile / HTML artifacts.  It must never be able to
    re-run or re-score an alignment — the service serves reports
    straight from the result cache, and an ``align/`` import here would
    let a render path silently pay O(n^3) (or drift from the cached
    result it claims to describe).  Anything needing alignment data
    must receive it through ``FamilyModel`` / ``RepeatResult``.  A
    deliberate exception carries a waiver:
    ``# repro-lint: allow[RPR020] reason``.
    """
    if not _in_dir(path, "annot") or _is_test_file(path):
        return []
    return [
        Diagnostic(
            rule="RPR020",
            path=path,
            line=node.lineno,
            message=f"import of {imported} inside the repro.annot layer; "
            "annotation renders cached results and must consume "
            "repro.core report models only — never the alignment "
            "kernels (or waive with `# repro-lint: allow[RPR020] "
            "reason`)",
        )
        for node, imported in _align_imports(tree)
    ]


# ---------------------------------------------------------------------------
# RPR018 — admission discipline: service code must not write the queue
# ---------------------------------------------------------------------------

#: Attribute receivers that name the spool queue (``self.queue``,
#: ``service.queue``, a bare ``queue`` variable, ...).
_QUEUE_NAMES = {"queue", "spool", "spool_queue"}


def rule_direct_queue_write(tree: ast.Module, path: str) -> list[Diagnostic]:
    """RPR018: direct spool-queue writes inside ``repro.service``.

    Every job must enter the spool through the gateway — tenant
    resolution, quotas, idempotency and the fair-share lanes all live
    at admission, so a ``queue.submit(...)`` anywhere else in the
    service package silently bypasses multi-tenancy: the job skips
    quota accounting, takes no lane slot, and dodges the dispatch
    window that makes deficit-round-robin real.  ``queue.py`` itself
    (the implementation) and tests are exempt; a deliberate exception
    elsewhere carries a waiver: ``# repro-lint: allow[RPR018] reason``.
    """
    if not _in_dir(path, "service") or _is_test_file(path):
        return []
    if Path(path).name == "queue.py":
        return []
    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
        ):
            continue
        receiver = node.func.value
        name = None
        if isinstance(receiver, ast.Attribute):
            name = receiver.attr
        elif isinstance(receiver, ast.Name):
            name = receiver.id
        if name in _QUEUE_NAMES:
            findings.append(
                Diagnostic(
                    rule="RPR018",
                    path=path,
                    line=node.lineno,
                    message=f"direct spool-queue write ({name}.submit) in "
                    "repro.service bypasses gateway admission — quotas, "
                    "idempotency and fair-share lanes are all enforced "
                    "there; route the job through Gateway.submit (or waive "
                    "with `# repro-lint: allow[RPR018] reason`)",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# RPR019 — prune discipline: early exits in align/ must consult the gate
# ---------------------------------------------------------------------------

#: Identifier fragments that mark a score-threshold comparison.
_THRESHOLD_WORDS = ("threshold", "min_score", "cutoff", "floor")

#: Identifier fragments that mark a PruneContext/PruneGate consultation.
_GATE_WORDS = ("gate", "prune")

#: Ordering operators — identity/equality tests are not threshold checks.
_ORDERING_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _identifier_fragments(node: ast.AST) -> Iterator[str]:
    """Every Name id and Attribute attr under ``node``, lowercased."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id.lower()
        elif isinstance(sub, ast.Attribute):
            yield sub.attr.lower()


def _mentions(node: ast.AST, words: tuple[str, ...]) -> bool:
    return any(
        word in fragment
        for fragment in _identifier_fragments(node)
        for word in words
    )


def rule_ad_hoc_prune_branch(tree: ast.Module, path: str) -> list[Diagnostic]:
    """RPR019: threshold early-exits in ``align/`` outside the PruneGate.

    Every skipped cell in an alignment kernel must be *provably*
    irrelevant, and the proofs all live in one place —
    :mod:`repro.align.pruning`'s bound tables, threaded into engines as
    a ``PruneGate``.  An ad-hoc ``if score < min_score: return``
    sprinkled into a kernel has no such proof: it silently changes
    accepted tops, and the invariant checker cannot audit a bound that
    was never recorded.  Early-terminate branches that compare against
    threshold-like values (``threshold``/``min_score``/``cutoff``/
    ``floor``) must therefore consult the gate — reference a
    ``gate``/``prune`` name in the condition or the branch body — so
    the skip is recorded and verifiable.  A deliberate exception
    carries a waiver: ``# repro-lint: allow[RPR019] reason``.
    """
    if not _in_dir(path, "align") or _is_test_file(path):
        return []
    if Path(path).name == "pruning.py":
        return []  # the gate implementation is the one allowed home
    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        exits = any(
            isinstance(sub, (ast.Break, ast.Continue, ast.Return))
            for stmt in node.body
            for sub in ast.walk(stmt)
        )
        if not exits:
            continue
        threshold_compare = any(
            isinstance(sub, ast.Compare)
            and any(isinstance(op, _ORDERING_OPS) for op in sub.ops)
            and _mentions(sub, _THRESHOLD_WORDS)
            for sub in ast.walk(node.test)
        )
        if not threshold_compare:
            continue
        if _mentions(node.test, _GATE_WORDS) or any(
            _mentions(stmt, _GATE_WORDS) for stmt in node.body
        ):
            continue
        findings.append(
            Diagnostic(
                rule="RPR019",
                path=path,
                line=node.lineno,
                message="early-terminate branch compares against a "
                "threshold without consulting a PruneContext bound; "
                "route the skip through a PruneGate "
                "(check_row/check_columns/row_cutoffs) so it is recorded "
                "and provable, or waive with "
                "`# repro-lint: allow[RPR019] reason`",
            )
        )
    return findings


#: Per-file rules, in reporting order.  Lock discipline (RPR003) and
#: export consistency (RPR005) are registered by the linter driver.
FILE_RULES: tuple[tuple[str, Rule], ...] = (
    ("RPR001", rule_per_cell_loop),
    ("RPR002", rule_implicit_dtype),
    ("RPR004", rule_unseeded_random),
    ("RPR006", rule_bare_except),
    ("RPR007", rule_absolute_self_import),
    ("RPR008", rule_quadratic_list_op),
    ("RPR010", rule_blocking_in_handler),
    ("RPR011", rule_wall_clock_in_hot_path),
    ("RPR012", rule_socket_discipline),
    ("RPR017", rule_index_layer_imports),
    ("RPR018", rule_direct_queue_write),
    ("RPR019", rule_ad_hoc_prune_branch),
    ("RPR020", rule_annot_layer_imports),
)


def iter_file_rules() -> Iterator[tuple[str, Rule]]:
    """The registered per-file rules (id, callable)."""
    yield from FILE_RULES
