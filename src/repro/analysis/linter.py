"""The ``repro lint`` driver.

Two analysis layers share one driver:

* **per-file rules** — each file is parsed once and dispatched through
  the registered AST rules (RPR001..RPR012 and RPR017, including the
  RPR003 lock-discipline detector and the RPR005 export checker);
* **whole-program rules** — the same parse also feeds
  :func:`repro.analysis.graph.extract_module_facts`; the resulting
  facts build a :class:`~repro.analysis.graph.ProgramGraph` over which
  the interprocedural rules RPR013..RPR016 run
  (:mod:`repro.analysis.interproc`).

Per-module facts and per-file findings are cached by content SHA in
``.repro-lint-cache/`` (:mod:`repro.analysis.cache`), so a warm run
re-parses only changed files; the interprocedural rules re-run over the
cached facts every time, which keeps cross-module findings sound.

Extra driver modes: ``--format sarif`` (GitHub code scanning),
``--graph callers|callees|locks <symbol>`` (interactive call/lock-graph
queries), ``--changed`` (git-diff files plus reverse import
dependencies), ``--stats`` (machine-readable timing/size JSON).

Exit status: 0 when no unsuppressed error-severity findings remain,
1 otherwise, 2 on usage errors — so CI can run
``repro lint src/repro benchmarks`` directly.
"""

from __future__ import annotations

import argparse
import ast
import json
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .cache import DEFAULT_CACHE_DIR, LintCache, content_digest
from .diagnostics import Diagnostic, diagnostic_from_dict, parse_waivers
from .exports import check_exports
from .graph import ModuleFacts, ProgramGraph, extract_module_facts
from .interproc import run_interproc_rules
from .locks import check_lock_discipline
from .rules import FILE_RULES

__all__ = [
    "collect_files",
    "lint_file",
    "lint_paths",
    "analyze_paths",
    "AnalysisResult",
    "active_rules",
    "main",
]

#: Directories never worth linting.  ``fixtures`` holds the analysis
#: test corpus of *deliberately* broken mini-packages.
_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".hypothesis",
    ".pytest_cache",
    ".benchmarks",
    ".repro-lint-cache",
    "build",
    "dist",
    "fixtures",
}

#: Rule id -> one-line description, for ``--list-rules`` and SARIF.
RULE_DOC: dict[str, str] = {
    "RPR000": "malformed waiver comment (missing reason / misplaced)",
    "RPR001": "per-cell Python loop in an align/ kernel (keep kernels vectorised)",
    "RPR002": "numpy matrix constructor without explicit dtype=",
    "RPR003": "mutation of lock-guarded shared state outside the lock (race)",
    "RPR004": "unseeded randomness in benchmarks/ or simulate/",
    "RPR005": "__all__ / re-export drift",
    "RPR006": "bare except:",
    "RPR007": "PYTHONPATH-unsafe absolute self-import inside the package",
    "RPR008": "O(n) list.insert(0,..)/in-on-list in a loop",
    "RPR010": "blocking call (time.sleep / unbounded Queue.get) in a service request-handling path",
    "RPR011": "wall-clock time.time() in an instrumented path (use time.perf_counter)",
    "RPR012": "raw socket / unbounded recv/accept outside cluster/transport.py",
    "RPR013": "service handler / lease-holding path transitively reaches a blocking call",
    "RPR014": "lock-order cycle across classes (potential deadlock)",
    "RPR015": "message kind/tag sent without a receiver dispatch arm, or consumer reads an unproduced field",
    "RPR016": "invariant violation caught-and-dropped / unpicklable exception in a worker path",
    "RPR017": "repro.align import inside the repro.index layer (index routes before alignment)",
    "RPR018": "direct spool-queue write in repro.service (bypasses gateway admission)",
    "RPR019": "ad-hoc threshold early-exit in align/ (skips must consult a PruneGate bound)",
    "RPR020": "repro.align import inside the repro.annot layer (annotation renders cached results only)",
}


def active_rules() -> list[str]:
    """Ids of every rule the linter runs (sorted)."""
    return sorted(RULE_DOC)


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
        elif path.suffix == ".py":
            files.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


def _per_file_findings(
    tree: ast.Module,
    source: str,
    path: str,
    waivers,
    timings: dict[str, float] | None = None,
) -> list[Diagnostic]:
    """Unsuppressed per-file findings for one parsed module."""
    findings: list[Diagnostic] = list(waivers.problems)
    for rule_id, rule in FILE_RULES:
        start = time.perf_counter()
        findings.extend(rule(tree, path))
        if timings is not None:
            timings[rule_id] = timings.get(rule_id, 0.0) + (
                time.perf_counter() - start
            )
    start = time.perf_counter()
    findings.extend(check_lock_discipline(tree, source, path))
    if timings is not None:
        timings["RPR003"] = timings.get("RPR003", 0.0) + (
            time.perf_counter() - start
        )
    start = time.perf_counter()
    findings.extend(check_exports(tree, path))
    if timings is not None:
        timings["RPR005"] = timings.get("RPR005", 0.0) + (
            time.perf_counter() - start
        )
    unsuppressed = [d for d in findings if not waivers.is_waived(d.rule, d.line)]
    # A rule may fire twice on one statement via nested scopes; report once.
    unique: dict[tuple[str, str, int, str], Diagnostic] = {}
    for diag in unsuppressed:
        unique.setdefault((diag.rule, diag.path, diag.line, diag.message), diag)
    return sorted(unique.values(), key=lambda d: (d.path, d.line, d.rule))


def lint_file(path: str | Path) -> list[Diagnostic]:
    """All unsuppressed per-file findings for one file."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [
            Diagnostic(
                rule="RPR000", path=str(path), line=0, message=f"unreadable: {exc}"
            )
        ]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="RPR000",
                path=str(path),
                line=exc.lineno or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    waivers = parse_waivers(source, str(path))
    return _per_file_findings(tree, source, str(path), waivers)


@dataclass
class AnalysisResult:
    """Everything one driver run produced."""

    findings: list[Diagnostic] = field(default_factory=list)
    graph: ProgramGraph | None = None
    #: driver counters: files, modules analysed/cached, timings.
    stats: dict = field(default_factory=dict)


def analyze_paths(
    paths: Iterable[str | Path],
    *,
    use_cache: bool = False,
    cache_dir: str | Path = DEFAULT_CACHE_DIR,
) -> AnalysisResult:
    """Per-file *and* whole-program findings across ``paths``."""
    total_start = time.perf_counter()
    files = collect_files(paths)
    cache = LintCache(cache_dir) if use_cache else None
    timings: dict[str, float] = {}
    findings: list[Diagnostic] = []
    facts_by_path: dict[str, ModuleFacts] = {}
    n_cached = 0
    n_analyzed = 0

    contents: dict[Path, bytes] = {}
    for file_path in files:
        try:
            contents[file_path] = file_path.read_bytes()
        except OSError as exc:
            findings.append(
                Diagnostic(
                    rule="RPR000",
                    path=str(file_path),
                    line=0,
                    message=f"unreadable: {exc}",
                )
            )

    def digest_for(file_path: Path) -> str:
        # An __init__'s findings depend on sibling files (the RPR005
        # cross-module half reads their __all__), so its cache key
        # covers every sibling's content as well as its own.
        content = contents[file_path]
        if file_path.name == "__init__.py":
            parent = file_path.parent
            sibling_salt = "\n".join(
                content_digest(contents[p], str(p))
                for p in files
                if p in contents and p.parent == parent and p != file_path
            )
            return content_digest(content, f"{file_path}\n{sibling_salt}")
        return content_digest(content, str(file_path))

    for file_path in files:
        if file_path not in contents:
            continue
        path = str(file_path)
        content = contents[file_path]
        cacheable = cache is not None
        digest = digest_for(file_path) if cacheable else ""
        if cacheable:
            payload = cache.load(digest)
            if payload is not None:
                facts_by_path[path] = ModuleFacts.from_dict(payload["facts"])
                findings.extend(
                    diagnostic_from_dict(d) for d in payload["findings"]
                )
                n_cached += 1
                continue
        source = content.decode("utf-8", errors="replace")
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            findings.append(
                Diagnostic(
                    rule="RPR000",
                    path=path,
                    line=exc.lineno or 0,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        n_analyzed += 1
        waivers = parse_waivers(source, path)
        file_findings = _per_file_findings(tree, source, path, waivers, timings)
        findings.extend(file_findings)
        start = time.perf_counter()
        facts = extract_module_facts(tree, source, path, waivers=waivers)
        timings["facts"] = timings.get("facts", 0.0) + (
            time.perf_counter() - start
        )
        facts_by_path[path] = facts
        if cacheable:
            cache.store(
                digest,
                {
                    "facts": facts.to_dict(),
                    "findings": [d.to_dict() for d in file_findings],
                },
            )

    # -- whole-program pass ------------------------------------------------
    start = time.perf_counter()
    graph = ProgramGraph(facts_by_path.values())
    timings["graph"] = time.perf_counter() - start
    interproc = run_interproc_rules(graph, timings)
    unsuppressed: list[Diagnostic] = []
    seen: set[tuple[str, str, int, str]] = set()
    for diag in sorted(interproc, key=lambda d: (d.path, d.line, d.rule)):
        facts = facts_by_path.get(diag.path)
        if facts is not None and facts.is_waived(diag.rule, diag.line):
            continue
        key = (diag.rule, diag.path, diag.line, diag.message)
        if key not in seen:
            seen.add(key)
            unsuppressed.append(diag)
    findings.extend(unsuppressed)

    graph_stats = graph.stats()
    stats = {
        "files": len(files),
        "modules": graph_stats["modules"],
        "modules_analyzed": n_analyzed,
        "modules_cached": n_cached,
        "functions": graph_stats["functions"],
        "call_edges": graph_stats["call_edges"],
        "lock_nodes": graph_stats["lock_nodes"],
        "lock_edges": graph_stats["lock_edges"],
        "findings": len(findings),
        "rules_active": len(active_rules()),
        "rule_timings_ms": {
            k: round(v * 1000.0, 3) for k, v in sorted(timings.items())
        },
        "total_ms": round((time.perf_counter() - total_start) * 1000.0, 3),
    }
    return AnalysisResult(findings=findings, graph=graph, stats=stats)


def lint_paths(paths: Iterable[str | Path]) -> list[Diagnostic]:
    """Findings across every file reachable from ``paths`` (no cache)."""
    return analyze_paths(paths).findings


# ---------------------------------------------------------------------------
# --changed support
# ---------------------------------------------------------------------------


def _git_changed_paths() -> set[Path] | None:
    """Files touched per git (diff vs HEAD + untracked), resolved."""
    changed: set[Path] = set()
    for args in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                args, capture_output=True, text=True, timeout=30, check=False
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        for line in proc.stdout.splitlines():
            line = line.strip()
            if line:
                changed.add(Path(line).resolve())
    return changed


def _changed_scope(result: AnalysisResult) -> set[str] | None:
    """Paths in scope for ``--changed``: touched files + reverse deps."""
    changed = _git_changed_paths()
    if changed is None:
        return None
    graph = result.graph
    if graph is None:
        return set()
    touched_modules = [
        mf.module
        for mf in graph.modules.values()
        if Path(mf.path).resolve() in changed
    ]
    in_scope = graph.reverse_import_closure(touched_modules)
    return {
        mf.path for mf in graph.modules.values() if mf.module in in_scope
    }


# ---------------------------------------------------------------------------
# rendering and CLI
# ---------------------------------------------------------------------------


def _render(findings: Sequence[Diagnostic], fmt: str) -> str:
    if fmt == "json":
        return json.dumps([d.to_dict() for d in findings], indent=2)
    if fmt == "sarif":
        from .sarif import render_sarif

        return render_sarif(findings, RULE_DOC)
    return "\n".join(d.render() for d in findings)


def _print_graph_query(
    graph: ProgramGraph, query: str, symbol: str
) -> int:
    if query == "locks":
        edges = [
            (src, dst, ev)
            for src, dsts in sorted(graph.lock_edges.items())
            for dst, ev in dsts
            if symbol == "all"
            or symbol in src[0].rsplit(":", 1)[-1]
            or symbol in dst[0].rsplit(":", 1)[-1]
        ]
        if not edges:
            print(f"repro lint: no lock edges match {symbol!r}")
            return 0
        for (scls, sattr), (dcls, dattr), ev in edges:
            print(f"{scls}.{sattr} -> {dcls}.{dattr}  [{ev}]")
        return 0
    nodes = graph.find_nodes(symbol)
    if not nodes:
        print(f"repro lint: no function matches {symbol!r}", file=sys.stderr)
        return 2
    for node in nodes:
        mf, ff = graph.functions[node]
        print(f"{node}  ({mf.path}:{ff.line})")
        hits = graph.callers(node) if query == "callers" else graph.callees(node)
        for other, line in sorted(hits):
            print(f"  {'<-' if query == 'callers' else '->'} {other}  (line {line})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Project-specific static analysis for the repro codebase "
        "(invariant-guarding lint rules; see ANALYSIS.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text", dest="fmt"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="only report findings in git-changed files and their reverse "
        "import dependencies",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print driver timing/size counters as JSON instead of findings",
    )
    parser.add_argument(
        "--graph",
        nargs=2,
        metavar=("QUERY", "SYMBOL"),
        help="query the program graph: callers|callees|locks <symbol> "
        "(locks accepts a class name or 'all')",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental facts cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"facts cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (also ``python -m repro.analysis``)."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in active_rules():
            print(f"{rule}  {RULE_DOC[rule]}")
        return 0
    if args.graph is not None and args.graph[0] not in (
        "callers",
        "callees",
        "locks",
    ):
        print(
            f"repro lint: --graph query must be callers|callees|locks, "
            f"got {args.graph[0]!r}",
            file=sys.stderr,
        )
        return 2
    try:
        result = analyze_paths(
            args.paths, use_cache=not args.no_cache, cache_dir=args.cache_dir
        )
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.graph is not None:
        assert result.graph is not None
        return _print_graph_query(result.graph, args.graph[0], args.graph[1])
    findings = result.findings
    if args.changed:
        scope = _changed_scope(result)
        if scope is None:
            print(
                "repro lint: --changed requires a git checkout; "
                "linting everything",
                file=sys.stderr,
            )
        else:
            findings = [d for d in findings if d.path in scope]
    if args.stats:
        stats = dict(result.stats, findings=len(findings))
        print(json.dumps(stats, indent=2))
        return 1 if findings else 0
    if findings or args.fmt == "sarif":
        print(_render(findings, args.fmt))
    if args.fmt == "text":
        print(
            f"repro lint: {len(findings)} finding(s) in "
            f"{result.stats['files']} file(s), "
            f"{len(active_rules())} rules active, "
            f"{result.stats['modules_cached']} module(s) from cache",
            file=sys.stderr,
        )
    return 1 if findings else 0
