"""The ``repro lint`` driver.

Collects Python files, parses each once, dispatches every registered
rule (per-file AST rules, the RPR003 lock-discipline detector and the
RPR005 export checker), applies waiver comments, and renders findings.

Exit status: 0 when no unsuppressed error-severity findings remain,
1 otherwise, 2 on usage errors — so CI can run
``repro lint src/repro benchmarks`` directly.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Iterable, Sequence

from .diagnostics import Diagnostic, parse_waivers
from .exports import check_exports
from .locks import check_lock_discipline
from .rules import FILE_RULES

__all__ = ["collect_files", "lint_file", "lint_paths", "active_rules", "main"]

#: Directories never worth linting.
_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".hypothesis",
    ".pytest_cache",
    ".benchmarks",
    "build",
    "dist",
}

#: Rule id -> one-line description, for ``--list-rules``.
RULE_DOC: dict[str, str] = {
    "RPR000": "malformed waiver comment (missing reason / misplaced)",
    "RPR001": "per-cell Python loop in an align/ kernel (keep kernels vectorised)",
    "RPR002": "numpy matrix constructor without explicit dtype=",
    "RPR003": "mutation of lock-guarded shared state outside the lock (race)",
    "RPR004": "unseeded randomness in benchmarks/ or simulate/",
    "RPR005": "__all__ / re-export drift",
    "RPR006": "bare except:",
    "RPR007": "PYTHONPATH-unsafe absolute self-import inside the package",
    "RPR008": "O(n) list.insert(0,..)/in-on-list in a loop",
    "RPR010": "blocking call (time.sleep / unbounded Queue.get) in a service request-handling path",
    "RPR011": "wall-clock time.time() in an instrumented path (use time.perf_counter)",
    "RPR012": "raw socket / unbounded recv/accept outside cluster/transport.py",
}


def active_rules() -> list[str]:
    """Ids of every rule the linter runs (sorted)."""
    return sorted(RULE_DOC)


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
        elif path.suffix == ".py":
            files.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


def lint_file(path: str | Path) -> list[Diagnostic]:
    """All unsuppressed findings for one file."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [
            Diagnostic(
                rule="RPR000", path=str(path), line=0, message=f"unreadable: {exc}"
            )
        ]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="RPR000",
                path=str(path),
                line=exc.lineno or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    waivers = parse_waivers(source, str(path))
    findings: list[Diagnostic] = list(waivers.problems)
    for _, rule in FILE_RULES:
        findings.extend(rule(tree, str(path)))
    findings.extend(check_lock_discipline(tree, source, str(path)))
    findings.extend(check_exports(tree, str(path)))
    unsuppressed = [
        d for d in findings if not waivers.is_waived(d.rule, d.line)
    ]
    # A rule may fire twice on one statement via nested scopes; report once.
    unique: dict[tuple[str, str, int, str], Diagnostic] = {}
    for diag in unsuppressed:
        unique.setdefault((diag.rule, diag.path, diag.line, diag.message), diag)
    return sorted(unique.values(), key=lambda d: (d.path, d.line, d.rule))


def lint_paths(paths: Iterable[str | Path]) -> list[Diagnostic]:
    """Findings across every file reachable from ``paths``."""
    findings: list[Diagnostic] = []
    for path in collect_files(paths):
        findings.extend(lint_file(path))
    return findings


def _render(findings: Sequence[Diagnostic], fmt: str) -> str:
    if fmt == "json":
        return json.dumps(
            [
                {
                    "rule": d.rule,
                    "path": d.path,
                    "line": d.line,
                    "severity": str(d.severity),
                    "message": d.message,
                }
                for d in findings
            ],
            indent=2,
        )
    return "\n".join(d.render() for d in findings)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Project-specific static analysis for the repro codebase "
        "(invariant-guarding lint rules; see ANALYSIS.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text", dest="fmt"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (also ``python -m repro.analysis``)."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in active_rules():
            print(f"{rule}  {RULE_DOC[rule]}")
        return 0
    try:
        findings = lint_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if findings:
        print(_render(findings, args.fmt))
    n_files = len(collect_files(args.paths))
    if args.fmt == "text":
        print(
            f"repro lint: {len(findings)} finding(s) in {n_files} file(s), "
            f"{len(active_rules())} rules active",
            file=sys.stderr,
        )
    return 1 if findings else 0
