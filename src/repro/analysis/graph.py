"""Whole-program analysis core: per-module facts and the program graph.

The per-file rules (RPR001..RPR012) see one AST at a time; the
properties that actually carry the paper's "exactly the same top
alignments" guarantee span modules and processes — a lease frame built
in the coordinator must be consumed with a matching ``kind`` arm in the
node agent, a request handler must not *transitively* reach a blocking
call, two condition locks must never be acquired in opposite orders.

This module provides the two layers those interprocedural rules
(:mod:`repro.analysis.interproc`) stand on:

* :func:`extract_module_facts` — a single-pass, per-module fact
  extractor.  Facts are plain serialisable dataclasses
  (:class:`ModuleFacts` and friends) so the incremental cache
  (:mod:`repro.analysis.cache`) can key them by content SHA and skip
  re-parsing unchanged files;
* :class:`ProgramGraph` — resolves intra-package imports (including
  the ``__all__`` re-export surface RPR005 models), builds a
  name-resolution call graph plus a per-class lock-acquisition graph,
  and answers ``callers``/``callees``/``reachable`` queries for
  ``repro lint --graph``.

Resolution is deliberately *under*-approximate: a call the resolver
cannot attribute to a package symbol produces no edge (and therefore no
finding) rather than a guess.  That keeps the interprocedural rules
quiet-by-default, matching the waiver discipline of the per-file rules.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from .diagnostics import Waivers, parse_waivers
from .locks import _is_lock_factory, _self_attr
from .rules import _is_test_file, _time_sleep_aliases

__all__ = [
    "FACTS_VERSION",
    "FunctionFacts",
    "ClassFacts",
    "ModuleFacts",
    "ProgramGraph",
    "extract_module_facts",
    "module_name_for",
]

#: Bump when the fact schema or extraction logic changes; part of the
#: cache key so stale cached facts can never be replayed.
FACTS_VERSION = "repro-facts-1"

#: Blocking-call sink kinds recorded in :attr:`FunctionFacts.blocking`.
SINK_SLEEP = "time.sleep"
SINK_QUEUE_GET = "unbounded Queue.get"
SINK_RECV = "unbounded socket recv/accept"

#: Socket methods that block forever without a timeout (mirrors RPR012).
_BLOCKING_SOCKET_METHODS = frozenset({"recv", "recvfrom", "recv_into", "accept"})

#: Sink-level waivers honoured during extraction: a blocking call whose
#: line is waived for any of these rules is not a reachability sink.
_SINK_WAIVER_RULES = ("RPR010", "RPR012", "RPR013")

#: Module basename allowed to own raw blocking socket calls.
_TRANSPORT_BASENAME = "transport.py"

#: Modules whose presence in a module's imports marks it as part of the
#: message-passing domain for RPR015 (suffix match on the dotted name).
_MSG_SUBSTRATE_SUFFIXES = (".msgpass", ".transport", ".protocol")

#: Builtin exception names recognised when classifying exception classes.
_BUILTIN_EXCEPTIONS = frozenset(
    {
        "BaseException",
        "Exception",
        "ArithmeticError",
        "AssertionError",
        "AttributeError",
        "BufferError",
        "ConnectionError",
        "EOFError",
        "ImportError",
        "IndexError",
        "KeyError",
        "LookupError",
        "MemoryError",
        "NameError",
        "NotImplementedError",
        "OSError",
        "OverflowError",
        "RuntimeError",
        "StopIteration",
        "SystemError",
        "TimeoutError",
        "TypeError",
        "ValueError",
    }
)


def module_name_for(path: str | Path) -> str:
    """Dotted module name for ``path`` by walking up ``__init__.py`` dirs.

    ``src/repro/cluster/node.py`` -> ``repro.cluster.node``; a file whose
    parent is not a package resolves to its bare stem.
    """
    p = Path(path).resolve()
    parts: list[str] = [] if p.name == "__init__.py" else [p.stem]
    parent = p.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) if parts else p.stem


# ---------------------------------------------------------------------------
# fact dataclasses (all JSON-serialisable via to_dict/from_dict)
# ---------------------------------------------------------------------------


@dataclass
class FunctionFacts:
    """Per-function facts: calls, sinks, lock events."""

    name: str  # module-local qualname: "fn" or "Class.method"
    line: int
    end_line: int
    params: list[str] = field(default_factory=list)
    #: (dotted call expression, line) — e.g. ``("self._queue.insert", 120)``.
    calls: list[tuple[str, int]] = field(default_factory=list)
    #: local var -> dotted constructor expression (``x = Foo(...)``).
    local_types: dict[str, str] = field(default_factory=dict)
    #: (sink kind, line) blocking calls, sink-level waivers already applied.
    blocking: list[tuple[str, int]] = field(default_factory=list)
    #: (lock attr, line) every ``with self.<lock>:`` entry.
    lock_acquires: list[tuple[str, int]] = field(default_factory=list)
    #: (held attr, acquired attr, line) nested acquisitions.
    lock_pairs: list[tuple[str, str, int]] = field(default_factory=list)
    #: (held attr, call expression, line) calls made while holding a lock.
    calls_under_lock: list[tuple[str, str, int]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "end_line": self.end_line,
            "params": list(self.params),
            "calls": [list(c) for c in self.calls],
            "local_types": dict(self.local_types),
            "blocking": [list(b) for b in self.blocking],
            "lock_acquires": [list(a) for a in self.lock_acquires],
            "lock_pairs": [list(p) for p in self.lock_pairs],
            "calls_under_lock": [list(c) for c in self.calls_under_lock],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FunctionFacts":
        return cls(
            name=data["name"],
            line=data["line"],
            end_line=data["end_line"],
            params=list(data["params"]),
            calls=[tuple(c) for c in data["calls"]],
            local_types=dict(data["local_types"]),
            blocking=[tuple(b) for b in data["blocking"]],
            lock_acquires=[tuple(a) for a in data["lock_acquires"]],
            lock_pairs=[tuple(p) for p in data["lock_pairs"]],
            calls_under_lock=[tuple(c) for c in data["calls_under_lock"]],
        )


@dataclass
class ClassFacts:
    """Per-class facts: bases, attribute types, locks, exception shape."""

    name: str
    line: int
    bases: list[str] = field(default_factory=list)  # dotted base expressions
    methods: list[str] = field(default_factory=list)
    #: ``self.X = Ctor(...)`` -> attr -> dotted constructor expression.
    attr_types: dict[str, str] = field(default_factory=dict)
    lock_attrs: list[str] = field(default_factory=list)
    is_exception: bool = False
    #: required ``__init__`` args beyond self; -1 when no custom __init__.
    init_required: int = -1
    has_reduce: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "methods": list(self.methods),
            "attr_types": dict(self.attr_types),
            "lock_attrs": list(self.lock_attrs),
            "is_exception": self.is_exception,
            "init_required": self.init_required,
            "has_reduce": self.has_reduce,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ClassFacts":
        return cls(**data)


@dataclass
class ModuleFacts:
    """Everything the interprocedural rules need from one module."""

    module: str
    path: str
    is_test: bool = False
    msg_domain: bool = False
    #: local alias -> dotted target ("protocol" -> "repro.cluster.protocol",
    #: "run_scan_shard" -> "repro.cluster.execution.run_scan_shard").
    import_aliases: dict[str, str] = field(default_factory=dict)
    #: dotted names of every imported module (package-internal + external).
    imported_modules: list[str] = field(default_factory=list)
    #: module-level constant bindings (str/int/float/bool values only).
    constants: dict[str, Any] = field(default_factory=dict)
    functions: dict[str, FunctionFacts] = field(default_factory=dict)
    classes: dict[str, ClassFacts] = field(default_factory=dict)
    #: (exception dotted expr, function qualname, line).
    raises: list[tuple[str, str, int]] = field(default_factory=list)
    #: (caught type exprs, handler re-raises, function qualname, line).
    catches: list[tuple[list[str], bool, str, int]] = field(default_factory=list)
    #: message producers: {"ref"/"value", "keys", "func", "line"}.
    dict_kinds: list[dict[str, Any]] = field(default_factory=list)
    #: message consumers: {"ref"/"value", "func", "line"}.
    kind_compares: list[dict[str, Any]] = field(default_factory=list)
    #: dispatch arms: {"ref"/"value", "var", "fields": [[name, has_default,
    #: line], ...], "line"}.
    kind_arms: list[dict[str, Any]] = field(default_factory=list)
    #: tagged sends through a Communicator: {"ref"/"value", "func", "line"}.
    tag_sends: list[dict[str, Any]] = field(default_factory=list)
    #: tag consumers (recv(tag=..) / ``.tag ==`` compares).
    tag_consumes: list[dict[str, Any]] = field(default_factory=list)
    #: waiver state carried with the facts so cached modules can still
    #: suppress interprocedural findings.
    waiver_lines: dict[str, list[int]] = field(default_factory=dict)
    waiver_file_rules: list[str] = field(default_factory=list)

    # -- waiver helper ----------------------------------------------------

    def is_waived(self, rule: str, line: int) -> bool:
        if rule in self.waiver_file_rules:
            return True
        return line in self.waiver_lines.get(rule, ())

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": FACTS_VERSION,
            "module": self.module,
            "path": self.path,
            "is_test": self.is_test,
            "msg_domain": self.msg_domain,
            "import_aliases": dict(self.import_aliases),
            "imported_modules": list(self.imported_modules),
            "constants": dict(self.constants),
            "functions": {k: v.to_dict() for k, v in self.functions.items()},
            "classes": {k: v.to_dict() for k, v in self.classes.items()},
            "raises": [list(r) for r in self.raises],
            "catches": [
                [list(types), reraises, func, line]
                for types, reraises, func, line in self.catches
            ],
            "dict_kinds": self.dict_kinds,
            "kind_compares": self.kind_compares,
            "kind_arms": self.kind_arms,
            "tag_sends": self.tag_sends,
            "tag_consumes": self.tag_consumes,
            "waiver_lines": {k: sorted(v) for k, v in self.waiver_lines.items()},
            "waiver_file_rules": sorted(self.waiver_file_rules),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ModuleFacts":
        facts = cls(module=data["module"], path=data["path"])
        facts.is_test = data["is_test"]
        facts.msg_domain = data["msg_domain"]
        facts.import_aliases = dict(data["import_aliases"])
        facts.imported_modules = list(data["imported_modules"])
        facts.constants = dict(data["constants"])
        facts.functions = {
            k: FunctionFacts.from_dict(v) for k, v in data["functions"].items()
        }
        facts.classes = {
            k: ClassFacts.from_dict(v) for k, v in data["classes"].items()
        }
        facts.raises = [tuple(r) for r in data["raises"]]
        facts.catches = [
            (list(types), reraises, func, line)
            for types, reraises, func, line in data["catches"]
        ]
        facts.dict_kinds = data["dict_kinds"]
        facts.kind_compares = data["kind_compares"]
        facts.kind_arms = data["kind_arms"]
        facts.tag_sends = data["tag_sends"]
        facts.tag_consumes = data["tag_consumes"]
        facts.waiver_lines = {k: list(v) for k, v in data["waiver_lines"].items()}
        facts.waiver_file_rules = list(data["waiver_file_rules"])
        return facts


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` attribute/name chain as a dotted string, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _resolve_relative(module: str, level: int, target: str | None) -> str:
    """Absolute dotted module for a relative import in ``module``."""
    base = module.split(".")
    # ``from . import x`` inside pkg.sub drops `level` trailing components
    # (the module's own name counts as one).
    anchor = base[: len(base) - level] if level <= len(base) else []
    if target:
        anchor = anchor + target.split(".")
    return ".".join(anchor)


def _value_ref(
    node: ast.expr,
) -> dict[str, Any] | None:
    """A literal/named message-kind or tag operand as a fact payload."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (str, int)):
        return {"value": node.value}
    ref = _dotted(node)
    if ref is not None:
        return {"ref": ref}
    return None


class _FunctionExtractor(ast.NodeVisitor):
    """Walks one function body (including nested defs/lambdas)."""

    def __init__(
        self,
        facts: FunctionFacts,
        lock_attrs: set[str],
        sleep_modules: set[str],
        sleep_direct: set[str],
        is_transport: bool,
        waivers: Waivers,
    ) -> None:
        self.f = facts
        self.lock_attrs = lock_attrs
        self.sleep_modules = sleep_modules
        self.sleep_direct = sleep_direct
        self.is_transport = is_transport
        self.waivers = waivers
        self.held: list[str] = []

    # -- lock regions ------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in self.lock_attrs:
                for h in self.held:
                    self.f.lock_pairs.append((h, attr, node.lineno))
                self.f.lock_acquires.append((attr, node.lineno))
                acquired.append(attr)
        self.held.extend(acquired)
        self.generic_visit(node)
        for _ in acquired:
            self.held.pop()

    # -- local constructor types ------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Call):
            ctor = _dotted(node.value.func)
            if ctor is not None and ctor.split(".")[-1][:1].isupper():
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.f.local_types[target.id] = ctor
        self.generic_visit(node)

    # -- calls and sinks ---------------------------------------------------

    def _sink_waived(self, line: int) -> bool:
        return any(self.waivers.is_waived(r, line) for r in _SINK_WAIVER_RULES)

    def visit_Call(self, node: ast.Call) -> None:
        expr = _dotted(node.func)
        if expr is not None:
            self.f.calls.append((expr, node.lineno))
            for h in self.held:
                self.f.calls_under_lock.append((h, expr, node.lineno))
        func = node.func
        sink: str | None = None
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id in self.sleep_modules
        ) or (isinstance(func, ast.Name) and func.id in self.sleep_direct):
            sink = SINK_SLEEP
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "get"
            and isinstance(func.value, (ast.Attribute, ast.Name))
            and "queue"
            in (
                func.value.attr
                if isinstance(func.value, ast.Attribute)
                else func.value.id
            ).lower()
            and not node.args
            and not any(kw.arg in ("timeout", "block") for kw in node.keywords)
        ):
            sink = SINK_QUEUE_GET
        elif (
            not self.is_transport
            and isinstance(func, ast.Attribute)
            and func.attr in _BLOCKING_SOCKET_METHODS
            and not any(kw.arg == "timeout" for kw in node.keywords)
        ):
            sink = SINK_RECV
        if sink is not None and not self._sink_waived(node.lineno):
            self.f.blocking.append((sink, node.lineno))
        self.generic_visit(node)


def _required_init_args(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> int:
    args = fn.args
    positional = list(args.posonlyargs) + list(args.args)
    required = max(0, len(positional) - len(args.defaults))
    required += sum(
        1 for _, default in zip(args.kwonlyargs, args.kw_defaults) if default is None
    )
    return max(0, required - 1)  # drop self


def _looks_like_exception(bases: list[str]) -> bool:
    for base in bases:
        tail = base.split(".")[-1]
        if (
            tail in _BUILTIN_EXCEPTIONS
            or tail.endswith("Error")
            or tail.endswith("Exception")
            or tail.endswith("Violation")
            or tail.endswith("Full")
        ):
            return True
    return False


def _kind_source_vars(fn_node: ast.AST) -> dict[str, str]:
    """``k = frame.get("kind")`` / ``k = frame["kind"]`` -> {"k": "frame"}."""
    sources: dict[str, str] = {}
    for node in ast.walk(fn_node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        var: str | None = None
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "get"
            and value.args
            and isinstance(value.args[0], ast.Constant)
            and value.args[0].value == "kind"
            and isinstance(value.func.value, ast.Name)
        ):
            var = value.func.value.id
        elif (
            isinstance(value, ast.Subscript)
            and isinstance(value.slice, ast.Constant)
            and value.slice.value == "kind"
            and isinstance(value.value, ast.Name)
        ):
            var = value.value.id
        if var is not None:
            sources[target.id] = var
    return sources


def _kind_operand(node: ast.expr, kind_vars: dict[str, str]) -> str | None:
    """The message variable a "kind"-valued expression reads, if any.

    Recognises ``frame.get("kind")``, ``frame["kind"]`` and a local name
    previously assigned one of those; returns the frame variable name
    ("" when unknown but still kind-shaped).
    """
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value == "kind"
    ):
        return (
            node.func.value.id if isinstance(node.func.value, ast.Name) else ""
        )
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.slice, ast.Constant)
        and node.slice.value == "kind"
    ):
        return node.value.id if isinstance(node.value, ast.Name) else ""
    if isinstance(node, ast.Name) and node.id in kind_vars:
        return kind_vars[node.id]
    if isinstance(node, ast.Name) and node.id == "kind":
        return ""
    return None


def _field_accesses(body: list[ast.stmt], var: str) -> list[list[Any]]:
    """``var["f"]`` / ``var.get("f"[, default])`` accesses inside ``body``."""
    fields: list[list[Any]] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == var
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                fields.append([node.slice.value, False, node.lineno])
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == var
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                has_default = len(node.args) > 1 or bool(node.keywords)
                fields.append([node.args[0].value, has_default, node.lineno])
    return fields


def _extract_messaging(
    facts: ModuleFacts, fn_node: ast.AST, qual: str
) -> None:
    """Message-protocol facts (RPR015) for one function body."""
    kind_vars = _kind_source_vars(fn_node)
    # Pass 1: producers — dict literals carrying a "kind" key.  Keyed by
    # the Dict node so an enclosing ``result = {...}`` assignment can map
    # the variable, letting later ``result["x"] = ...`` grow the key set.
    dict_entries: dict[int, dict[str, Any]] = {}
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Dict):
            continue
        keys = {
            k.value
            for k in node.keys
            if isinstance(k, ast.Constant) and isinstance(k.value, str)
        }
        if "kind" not in keys:
            continue
        idx = next(
            i
            for i, k in enumerate(node.keys)
            if isinstance(k, ast.Constant) and k.value == "kind"
        )
        ref = _value_ref(node.values[idx])
        if ref is not None:
            entry = dict(
                ref, keys=sorted(k for k in keys if k != "kind"),
                func=qual, line=node.lineno,
            )
            facts.dict_kinds.append(entry)
            dict_entries[id(node)] = entry
    producer_vars: dict[str, dict[str, Any]] = {}
    for node in ast.walk(fn_node):
        # Track ``result["x"] = ...`` growth of a kind-dict bound to a name.
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if isinstance(node.value, ast.Dict):
                entry = dict_entries.get(id(node.value))
                if entry is not None:
                    producer_vars[node.target.id] = entry
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and isinstance(node.value, ast.Dict):
                entry = dict_entries.get(id(node.value))
                if entry is not None:
                    producer_vars[target.id] = entry
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in producer_vars
                and isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)
            ):
                entry = producer_vars[target.value.id]
                entry["keys"] = sorted({*entry["keys"], target.slice.value})
        # Consumers: comparisons against a kind-valued expression.
        if isinstance(node, ast.Compare) and len(node.comparators) == 1:
            left, right = node.left, node.comparators[0]
            for kind_side, value_side in ((left, right), (right, left)):
                var = _kind_operand(kind_side, kind_vars)
                if var is None:
                    continue
                operands = (
                    list(value_side.elts)
                    if isinstance(value_side, (ast.Tuple, ast.List, ast.Set))
                    else [value_side]
                )
                for operand in operands:
                    ref = _value_ref(operand)
                    if ref is not None:
                        facts.kind_compares.append(
                            dict(ref, func=qual, line=node.lineno)
                        )
                break
        # Dispatch arms: ``if <kind expr> == K:`` -> field subset facts.
        if isinstance(node, ast.If) and isinstance(node.test, ast.Compare):
            test = node.test
            if len(test.ops) == 1 and isinstance(test.ops[0], ast.Eq):
                left, right = test.left, test.comparators[0]
                for kind_side, value_side in ((left, right), (right, left)):
                    var = _kind_operand(kind_side, kind_vars)
                    ref = _value_ref(value_side) if var else None
                    if var and ref is not None:
                        fields = _field_accesses(node.body, var)
                        if fields:
                            facts.kind_arms.append(
                                dict(ref, var=var, fields=fields, line=node.lineno)
                            )
                        break
        # Tag sends/consumes through a Communicator-style endpoint.
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            tag_node: ast.expr | None = None
            if attr in ("send", "bcast_from"):
                pos = 2 if attr == "send" else 1
                if len(node.args) > pos:
                    tag_node = node.args[pos]
                for kw in node.keywords:
                    if kw.arg == "tag":
                        tag_node = kw.value
            elif attr == "recv":
                for kw in node.keywords:
                    if kw.arg == "tag":
                        tag_node = kw.value
            if tag_node is not None:
                ref = _value_ref(tag_node)
                if ref is not None:
                    bucket = (
                        facts.tag_consumes if attr == "recv" else facts.tag_sends
                    )
                    bucket.append(dict(ref, func=qual, line=node.lineno))
        # ``msg.tag == T_X`` consumers.
        if isinstance(node, ast.Compare) and len(node.comparators) == 1:
            left, right = node.left, node.comparators[0]
            for tag_side, value_side in ((left, right), (right, left)):
                if (
                    isinstance(tag_side, ast.Attribute)
                    and tag_side.attr == "tag"
                ):
                    ref = _value_ref(value_side)
                    if ref is not None:
                        facts.tag_consumes.append(
                            dict(ref, func=qual, line=node.lineno)
                        )
                    break


def _extract_exceptions(
    facts: ModuleFacts, fn_node: ast.AST, qual: str
) -> None:
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            name = _dotted(target)
            if name is not None:
                facts.raises.append((name, qual, node.lineno))
        elif isinstance(node, ast.ExceptHandler) and node.type is not None:
            types = (
                [t for t in (_dotted(e) for e in node.type.elts) if t]
                if isinstance(node.type, ast.Tuple)
                else ([_dotted(node.type)] if _dotted(node.type) else [])
            )
            if types:
                reraises = any(
                    isinstance(n, ast.Raise) for n in ast.walk(node)
                )
                facts.catches.append((types, reraises, qual, node.lineno))


def extract_module_facts(
    tree: ast.Module,
    source: str,
    path: str | Path,
    module: str | None = None,
    waivers: Waivers | None = None,
) -> ModuleFacts:
    """Extract every whole-program fact from one parsed module."""
    path = str(path)
    if module is None:
        module = module_name_for(path)
    if waivers is None:
        waivers = parse_waivers(source, path)
    facts = ModuleFacts(module=module, path=path, is_test=_is_test_file(path))
    facts.waiver_lines = {
        rule: sorted(lines) for rule, lines in waivers.lines.items()
    }
    facts.waiver_file_rules = sorted(waivers.file_rules)

    # -- imports (module- and function-level) -----------------------------
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                facts.import_aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
                facts.imported_modules.append(alias.name)
        elif isinstance(node, ast.ImportFrom):
            target = (
                _resolve_relative(module, node.level, node.module)
                if node.level
                else (node.module or "")
            )
            if not target:
                continue
            facts.imported_modules.append(target)
            for alias in node.names:
                if alias.name == "*":
                    continue
                facts.import_aliases[alias.asname or alias.name] = (
                    f"{target}.{alias.name}"
                )
    facts.imported_modules = sorted(set(facts.imported_modules))
    basename = Path(path).name
    import_targets = set(facts.imported_modules) | set(
        facts.import_aliases.values()
    )
    facts.msg_domain = any(
        m.endswith(_MSG_SUBSTRATE_SUFFIXES)
        or m in ("msgpass", "transport", "protocol")
        for m in import_targets
    ) or basename in ("msgpass.py", "transport.py", "protocol.py")

    # -- module-level constants -------------------------------------------
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
            if isinstance(node.value.value, (str, int, float, bool)):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        facts.constants[target.id] = node.value.value

    sleep_modules, sleep_direct = _time_sleep_aliases(tree)
    is_transport = basename == _TRANSPORT_BASENAME

    def scan_function(
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        qual: str,
        lock_attrs: set[str],
    ) -> FunctionFacts:
        ff = FunctionFacts(
            name=qual,
            line=fn.lineno,
            end_line=fn.end_lineno or fn.lineno,
            params=[a.arg for a in fn.args.posonlyargs + fn.args.args],
        )
        extractor = _FunctionExtractor(
            ff, lock_attrs, sleep_modules, sleep_direct, is_transport, waivers
        )
        for stmt in fn.body:
            extractor.visit(stmt)
        _extract_messaging(facts, fn, qual)
        _extract_exceptions(facts, fn, qual)
        return ff

    # -- top-level functions ----------------------------------------------
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts.functions[node.name] = scan_function(node, node.name, set())

    # -- classes ----------------------------------------------------------
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        methods = [
            n
            for n in node.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        cf = ClassFacts(
            name=node.name,
            line=node.lineno,
            bases=[b for b in (_dotted(base) for base in node.bases) if b],
            methods=[m.name for m in methods],
        )
        lock_attrs: set[str] = set()
        for method in methods:
            for sub in ast.walk(method):
                if isinstance(sub, ast.Assign):
                    if _is_lock_factory(sub.value):
                        for target in sub.targets:
                            attr = _self_attr(target)
                            if attr is not None:
                                lock_attrs.add(attr)
                    elif isinstance(sub.value, ast.Call):
                        ctor = _dotted(sub.value.func)
                        if ctor and ctor.split(".")[-1][:1].isupper():
                            for target in sub.targets:
                                attr = _self_attr(target)
                                if attr is not None:
                                    cf.attr_types.setdefault(attr, ctor)
        cf.lock_attrs = sorted(lock_attrs)
        cf.is_exception = _looks_like_exception(cf.bases)
        for method in methods:
            if method.name == "__init__":
                cf.init_required = _required_init_args(method)
            if method.name in ("__reduce__", "__reduce_ex__", "__getnewargs__"):
                cf.has_reduce = True
            qual = f"{node.name}.{method.name}"
            facts.functions[qual] = scan_function(method, qual, lock_attrs)
        facts.classes[node.name] = cf

    return facts


# ---------------------------------------------------------------------------
# the program graph
# ---------------------------------------------------------------------------


class ProgramGraph:
    """Call graph + lock graph over a set of module facts.

    Node ids are ``"module:qualname"`` strings, e.g.
    ``"repro.cluster.node:NodeAgent._execute_lease"``.
    """

    def __init__(self, modules: Iterable[ModuleFacts]) -> None:
        self.modules: dict[str, ModuleFacts] = {m.module: m for m in modules}
        #: node id -> (module facts, function facts)
        self.functions: dict[str, tuple[ModuleFacts, FunctionFacts]] = {}
        for mf in self.modules.values():
            for qual, ff in mf.functions.items():
                self.functions[f"{mf.module}:{qual}"] = (mf, ff)
        #: node id -> [(callee id, call line)]
        self.call_edges: dict[str, list[tuple[str, int]]] = {}
        self._reverse: dict[str, list[tuple[str, int]]] = {}
        self._build_call_edges()
        #: (class id, lock attr) -> [((class id, lock attr), evidence str)]
        self.lock_edges: dict[
            tuple[str, str], list[tuple[tuple[str, str], str]]
        ] = {}
        self._build_lock_edges()

    # -- symbol resolution -------------------------------------------------

    def _class_facts(self, class_id: str) -> tuple[ModuleFacts, ClassFacts] | None:
        module, _, name = class_id.partition(":")
        mf = self.modules.get(module)
        if mf is None:
            return None
        cf = mf.classes.get(name)
        return (mf, cf) if cf is not None else None

    def resolve_class_expr(self, module: str, expr: str) -> str | None:
        """A dotted constructor/base expression -> ``"module:Class"``."""
        mf = self.modules.get(module)
        if mf is None:
            return None
        parts = expr.split(".")
        if len(parts) == 1:
            if parts[0] in mf.classes:
                return f"{module}:{parts[0]}"
            target = mf.import_aliases.get(parts[0])
            if target is not None:
                owner, _, name = target.rpartition(".")
                if owner in self.modules and name in self.modules[owner].classes:
                    return f"{owner}:{name}"
            return None
        if len(parts) == 2:
            target = mf.import_aliases.get(parts[0])
            if target in self.modules and parts[1] in self.modules[target].classes:
                return f"{target}:{parts[1]}"
        return None

    def _method_node(self, class_id: str, method: str) -> str | None:
        """Resolve ``method`` on ``class_id``, walking package base classes."""
        seen: set[str] = set()
        queue = [class_id]
        while queue:
            cid = queue.pop(0)
            if cid in seen:
                continue
            seen.add(cid)
            entry = self._class_facts(cid)
            if entry is None:
                continue
            mf, cf = entry
            if method in cf.methods:
                return f"{mf.module}:{cf.name}.{method}"
            for base in cf.bases:
                resolved = self.resolve_class_expr(mf.module, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def _constructor_node(self, class_id: str) -> str | None:
        node = self._method_node(class_id, "__init__")
        return node if node is not None else None

    def resolve_call(
        self, mf: ModuleFacts, ff: FunctionFacts, expr: str
    ) -> str | None:
        """Resolve one recorded call expression to a node id (or None)."""
        parts = expr.split(".")
        cls_name = ff.name.split(".")[0] if "." in ff.name else None
        # self.method(...) / self.attr.method(...)
        if parts[0] == "self" and cls_name is not None:
            class_id = f"{mf.module}:{cls_name}"
            if len(parts) == 2:
                return self._method_node(class_id, parts[1])
            if len(parts) == 3:
                entry = self._class_facts(class_id)
                if entry is None:
                    return None
                attr_type = entry[1].attr_types.get(parts[1])
                if attr_type is None:
                    return None
                target_cls = self.resolve_class_expr(mf.module, attr_type)
                if target_cls is None:
                    return None
                return self._method_node(target_cls, parts[2])
            return None
        # var.method(...) where var is a locally-constructed instance.
        if len(parts) == 2 and parts[0] in ff.local_types:
            target_cls = self.resolve_class_expr(mf.module, ff.local_types[parts[0]])
            if target_cls is not None:
                return self._method_node(target_cls, parts[1])
        # Plain name: local function, imported symbol, or constructor.
        if len(parts) == 1:
            name = parts[0]
            if name in mf.functions and "." not in name:
                return f"{mf.module}:{name}"
            if name in mf.classes:
                return self._constructor_node(f"{mf.module}:{name}")
            target = mf.import_aliases.get(name)
            if target is not None:
                owner, _, sym = target.rpartition(".")
                if owner in self.modules:
                    other = self.modules[owner]
                    if sym in other.functions:
                        return f"{owner}:{sym}"
                    if sym in other.classes:
                        return self._constructor_node(f"{owner}:{sym}")
            return None
        # mod.symbol(...) through a module alias.
        if len(parts) == 2:
            target = mf.import_aliases.get(parts[0])
            if target in self.modules:
                other = self.modules[target]
                if parts[1] in other.functions:
                    return f"{target}:{parts[1]}"
                if parts[1] in other.classes:
                    return self._constructor_node(f"{target}:{parts[1]}")
        return None

    def resolve_constant(self, module: str, payload: dict[str, Any]) -> Any:
        """A ``{"value"|"ref"}`` fact payload -> concrete value (or None)."""
        if "value" in payload:
            return payload["value"]
        ref = payload.get("ref", "")
        mf = self.modules.get(module)
        if mf is None:
            return None
        parts = ref.split(".")
        if len(parts) == 1:
            if parts[0] in mf.constants:
                return mf.constants[parts[0]]
            target = mf.import_aliases.get(parts[0])
            if target is not None:
                owner, _, name = target.rpartition(".")
                owner_mf = self.modules.get(owner)
                if owner_mf is not None:
                    return owner_mf.constants.get(name)
            return None
        if len(parts) == 2:
            target = mf.import_aliases.get(parts[0])
            if target in self.modules:
                return self.modules[target].constants.get(parts[1])
        return None

    # -- graph construction ------------------------------------------------

    def _build_call_edges(self) -> None:
        for node_id, (mf, ff) in self.functions.items():
            edges: list[tuple[str, int]] = []
            seen: set[tuple[str, int]] = set()
            for expr, line in ff.calls:
                callee = self.resolve_call(mf, ff, expr)
                if callee is not None and (callee, line) not in seen:
                    seen.add((callee, line))
                    edges.append((callee, line))
            self.call_edges[node_id] = edges
            for callee, line in edges:
                self._reverse.setdefault(callee, []).append((node_id, line))

    def _build_lock_edges(self) -> None:
        reach_cache: dict[str, set[str]] = {}

        def reachable_set(start: str) -> set[str]:
            cached = reach_cache.get(start)
            if cached is not None:
                return cached
            seen = {start}
            queue = deque([start])
            while queue:
                cur = queue.popleft()
                for callee, _ in self.call_edges.get(cur, ()):
                    if callee not in seen:
                        seen.add(callee)
                        queue.append(callee)
            reach_cache[start] = seen
            return seen

        def add_edge(
            src: tuple[str, str], dst: tuple[str, str], evidence: str
        ) -> None:
            if src == dst:
                return  # re-entrant same-lock nesting is RLock territory
            bucket = self.lock_edges.setdefault(src, [])
            if all(existing != dst for existing, _ in bucket):
                bucket.append((dst, evidence))

        for node_id, (mf, ff) in self.functions.items():
            if "." not in ff.name:
                continue
            cls_name = ff.name.split(".")[0]
            class_id = f"{mf.module}:{cls_name}"
            cf = mf.classes.get(cls_name)
            if cf is None or not cf.lock_attrs:
                continue
            for held, acquired, line in ff.lock_pairs:
                add_edge(
                    (class_id, held),
                    (class_id, acquired),
                    f"{mf.path}:{line} ({ff.name})",
                )
            for held, expr, line in ff.calls_under_lock:
                callee = self.resolve_call(mf, ff, expr)
                if callee is None:
                    continue
                for reached in reachable_set(callee):
                    entry = self.functions.get(reached)
                    if entry is None:
                        continue
                    rmf, rff = entry
                    if "." not in rff.name:
                        continue
                    rcls = rff.name.split(".")[0]
                    rcf = rmf.classes.get(rcls)
                    if rcf is None:
                        continue
                    for attr, aline in rff.lock_acquires:
                        if attr in rcf.lock_attrs:
                            add_edge(
                                (class_id, held),
                                (f"{rmf.module}:{rcls}", attr),
                                f"{mf.path}:{line} ({ff.name} -> {rff.name})",
                            )

    # -- queries -----------------------------------------------------------

    def callees(self, node_id: str) -> list[tuple[str, int]]:
        return list(self.call_edges.get(node_id, ()))

    def callers(self, node_id: str) -> list[tuple[str, int]]:
        return list(self._reverse.get(node_id, ()))

    def reachable(self, start: str) -> dict[str, tuple[str, int]]:
        """BFS from ``start``; maps each reached node to (parent, line)."""
        parents: dict[str, tuple[str, int]] = {}
        queue = deque([start])
        seen = {start}
        while queue:
            cur = queue.popleft()
            for callee, line in self.call_edges.get(cur, ()):
                if callee not in seen:
                    seen.add(callee)
                    parents[callee] = (cur, line)
                    queue.append(callee)
        return parents

    def path_to(
        self, start: str, target: str, parents: dict[str, tuple[str, int]]
    ) -> list[str]:
        """Call chain ``start -> ... -> target`` from a BFS parent map."""
        chain = [target]
        cur = target
        while cur != start:
            parent = parents.get(cur)
            if parent is None:
                break
            cur = parent[0]
            chain.append(cur)
        return list(reversed(chain))

    def find_nodes(self, symbol: str) -> list[str]:
        """Node ids whose qualname matches ``symbol`` (exact or suffix)."""
        if symbol in self.functions:
            return [symbol]
        hits = [
            node_id
            for node_id in self.functions
            if node_id.endswith(f":{symbol}") or node_id.endswith(f".{symbol}")
        ]
        return sorted(hits)

    def _imported_package_modules(self, mf: ModuleFacts) -> set[str]:
        """Package modules ``mf`` imports, via module or symbol imports."""
        targets: set[str] = set()
        for imported in list(mf.imported_modules) + list(
            mf.import_aliases.values()
        ):
            if imported in self.modules and imported != mf.module:
                targets.add(imported)
            else:
                owner = imported.rpartition(".")[0]
                if owner in self.modules and owner != mf.module:
                    targets.add(owner)
        return targets

    def import_closure(self, roots: Iterable[str]) -> set[str]:
        """Package modules transitively imported from ``roots``."""
        seen: set[str] = set()
        queue = deque(m for m in roots if m in self.modules)
        seen.update(queue)
        while queue:
            cur = queue.popleft()
            for target in self._imported_package_modules(self.modules[cur]):
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return seen

    def reverse_import_closure(self, roots: Iterable[str]) -> set[str]:
        """Package modules that (transitively) import any of ``roots``."""
        importers: dict[str, set[str]] = {m: set() for m in self.modules}
        for mf in self.modules.values():
            for target in self._imported_package_modules(mf):
                importers[target].add(mf.module)
        seen = {m for m in roots if m in self.modules}
        queue = deque(seen)
        while queue:
            cur = queue.popleft()
            for dependent in importers.get(cur, ()):
                if dependent not in seen:
                    seen.add(dependent)
                    queue.append(dependent)
        return seen

    # -- summary -----------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "modules": len(self.modules),
            "functions": len(self.functions),
            "call_edges": sum(len(v) for v in self.call_edges.values()),
            "lock_nodes": len(
                {n for n in self.lock_edges}
                | {d for edges in self.lock_edges.values() for d, _ in edges}
            ),
            "lock_edges": sum(len(v) for v in self.lock_edges.values()),
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON summary used by the golden-graph fixture tests."""
        return {
            "call_edges": {
                node: sorted({callee for callee, _ in edges})
                for node, edges in sorted(self.call_edges.items())
                if edges
            },
            "lock_edges": {
                f"{cls}.{attr}": sorted(
                    f"{dcls}.{dattr}" for (dcls, dattr), _ in edges
                )
                for (cls, attr), edges in sorted(self.lock_edges.items())
                if edges
            },
        }
