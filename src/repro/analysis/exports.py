"""RPR005 — ``__all__`` / re-export consistency.

The package presents one curated surface (``repro``, plus per-subpackage
``__init__`` files re-exporting their modules).  Three kinds of drift
creep in as modules grow:

* ``__all__`` names a symbol the module never defines or imports
  (an ``ImportError`` for ``from m import *`` users, invisible until
  someone does it) — tolerated only when the module defines a
  ``__getattr__`` lazy-export hook;
* an ``__init__.py`` imports a public symbol from a submodule but
  forgets to list it in ``__all__`` (the symbol works but is
  undocumented, and disappears under ``import *``);
* an ``__init__.py`` re-exports a name the source module does not
  declare in *its* ``__all__`` (the package surface silently depends
  on a module-private symbol);
* duplicated ``__all__`` entries.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .diagnostics import Diagnostic

__all__ = ["check_exports"]


def _literal_all(tree: ast.Module) -> tuple[list[str] | None, int]:
    """The module's literal ``__all__`` list and its line, if present."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "__all__"
                    and isinstance(node.value, (ast.List, ast.Tuple))
                ):
                    names = [
                        elt.value
                        for elt in node.value.elts
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                    ]
                    return names, node.lineno
    return None, 0


def _top_level_bindings(tree: ast.Module) -> tuple[set[str], bool]:
    """Names bound at module top level, and whether ``__getattr__`` exists."""
    bound: set[str] = set()
    has_getattr = False
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            bound.add(elt.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
            if node.name == "__getattr__":
                has_getattr = True
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.add(alias.asname or alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
    return bound, has_getattr


def _module_all_of(path: Path) -> list[str] | None:
    """``__all__`` of a sibling module file, or None."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None
    names, _ = _literal_all(tree)
    return names


def check_exports(tree: ast.Module, path: str) -> list[Diagnostic]:
    """Run every export-consistency check over one module."""
    findings: list[Diagnostic] = []
    all_names, all_line = _literal_all(tree)
    bound, has_getattr = _top_level_bindings(tree)
    is_init = Path(path).name == "__init__.py"

    if all_names is None:
        # Only package __init__ files that re-export are required to
        # declare their surface.
        if is_init and any(
            isinstance(node, ast.ImportFrom) and node.level >= 1 for node in tree.body
        ):
            findings.append(
                Diagnostic(
                    rule="RPR005",
                    path=path,
                    line=1,
                    message="package __init__ re-exports submodule names "
                    "but declares no __all__",
                )
            )
        return findings

    seen: set[str] = set()
    for name in all_names:
        if name in seen:
            findings.append(
                Diagnostic(
                    rule="RPR005",
                    path=path,
                    line=all_line,
                    message=f"duplicate __all__ entry {name!r}",
                )
            )
        seen.add(name)
        if name not in bound and not has_getattr:
            findings.append(
                Diagnostic(
                    rule="RPR005",
                    path=path,
                    line=all_line,
                    message=f"__all__ names {name!r} but the module neither "
                    "defines nor imports it (and has no __getattr__)",
                )
            )

    if is_init:
        public = {name for name in bound if not name.startswith("_")}
        for name in sorted(public - set(all_names)):
            findings.append(
                Diagnostic(
                    rule="RPR005",
                    path=path,
                    line=all_line,
                    message=f"public name {name!r} is imported/defined in "
                    "this __init__ but missing from __all__ (export drift)",
                )
            )
        # Cross-module half: re-exported names must be in the source
        # module's own __all__.
        parent = Path(path).parent
        for node in tree.body:
            if not (
                isinstance(node, ast.ImportFrom) and node.level == 1 and node.module
            ):
                continue
            target = parent / (node.module.split(".", 1)[0] + ".py")
            if not target.exists():
                continue
            module_all = _module_all_of(target)
            if module_all is None:
                continue
            for alias in node.names:
                if alias.name not in module_all:
                    findings.append(
                        Diagnostic(
                            rule="RPR005",
                            path=path,
                            line=node.lineno,
                            message=f"re-export of {node.module}.{alias.name} "
                            "which is not in that module's __all__",
                        )
                    )
    return findings
