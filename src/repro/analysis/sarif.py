"""SARIF 2.1.0 rendering for ``repro lint --format sarif``.

Emits the minimal-but-valid subset GitHub code scanning consumes: one
run, one tool driver with the full rule table, one result per finding
with a physical location.  Interprocedural findings carry their call
chain as ``relatedLocations``-free message text plus a ``codeFlows``
stub in properties (kept lightweight on purpose — the chain is already
in the message).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from .diagnostics import Diagnostic, Severity

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "render_sarif", "sarif_dict"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

_TOOL_URI = "https://example.invalid/repro/ANALYSIS.md"


def _relative_uri(path: str) -> str:
    """A forward-slash, repo-relative URI for one finding path."""
    p = Path(path)
    try:
        p = p.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        pass
    return p.as_posix()


def sarif_dict(
    findings: Sequence[Diagnostic], rule_doc: dict[str, str]
) -> dict:
    """The SARIF log object for ``findings``."""
    rule_ids = sorted(rule_doc)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": rule_doc[rule_id]},
            "helpUri": _TOOL_URI,
        }
        for rule_id in rule_ids
    ]
    results = []
    for d in findings:
        result = {
            "ruleId": d.rule,
            "level": "error" if d.severity is Severity.ERROR else "warning",
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _relative_uri(d.path)},
                        "region": {"startLine": max(1, d.line)},
                    }
                }
            ],
        }
        if d.rule in rule_index:
            result["ruleIndex"] = rule_index[d.rule]
        if d.trace:
            result["properties"] = {"callChain": list(d.trace)}
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": _TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Sequence[Diagnostic], rule_doc: dict[str, str]
) -> str:
    """``findings`` as a SARIF 2.1.0 JSON document."""
    return json.dumps(sarif_dict(findings, rule_doc), indent=2)
