"""``python -m repro.analysis`` — run the project linter."""

from .linter import main

if __name__ == "__main__":
    raise SystemExit(main())
