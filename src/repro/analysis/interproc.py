"""Interprocedural rules RPR013-RPR016 over the program graph.

Each rule consumes the facts and resolution services of
:class:`repro.analysis.graph.ProgramGraph`; none of them re-parses
source.  Test modules never contribute entry points, producers or
findings — tests exercise protocols deliberately half-open (a probe
that sends a frame and never consumes the reply is the *point* of a
transport test).

``RPR013`` blocking-call reachability
    a ``do_*``/``handle*``/``*Handler`` entry point, or a function
    holding a cluster lease (a ``lease`` parameter), *transitively*
    reaches ``time.sleep`` / an unbounded ``Queue.get`` / an unbounded
    socket ``recv``/``accept``.  This upgrades RPR010/RPR012 from
    syntactic to semantic: the per-file rules see only the entry
    function's own body, this rule follows the call graph.
``RPR014`` lock-order deadlock detection
    a cycle in the cross-class lock-acquisition graph (built from the
    same lockset facts RPR003 infers): thread A holding ``C._lock``
    while acquiring ``D._cond`` deadlocks against thread B doing the
    reverse.  Re-entrant same-lock nesting is not reported (RLock
    territory, and RPR003 owns single-lock discipline).
``RPR015`` message-protocol conformance
    every ``kind`` literal / tag constant sent through the messaging
    substrates must have a receiver-side dispatch arm somewhere in the
    package, and a dispatch arm's field accesses without defaults must
    be a subset of the keys some producer of that kind constructs.
``RPR016`` exception-flow
    (a) an ``InvariantViolation`` (or any ``AssertionError`` family
    exception) caught and dropped — the invariant machinery exists to
    fail loudly; (b) a package exception class that cannot survive a
    pickle round-trip (custom ``__init__`` with more than one required
    argument and no ``__reduce__``) raised in a module reachable from
    the worker/node execution paths, where exceptions must cross a
    process or socket boundary.
"""

from __future__ import annotations

from typing import Iterable

from .diagnostics import Diagnostic
from .graph import ClassFacts, ModuleFacts, ProgramGraph

__all__ = [
    "INTERPROC_RULES",
    "run_interproc_rules",
    "rule_blocking_reachability",
    "rule_lock_order",
    "rule_message_protocol",
    "rule_exception_flow",
]

#: Module basename stems that mark worker/node execution paths: code in
#: these modules runs shards in child processes or remote nodes, so any
#: exception escaping them must pickle across the boundary.
_WORKER_MODULE_STEMS = frozenset({"workers", "worker", "node", "execution", "slave"})

#: The assertion-family roots for RPR016a.
_ASSERTION_ROOTS = frozenset({"AssertionError", "InvariantViolation"})


def _entry_kind(graph: ProgramGraph, node_id: str) -> str | None:
    """"handler"/"lease" when ``node_id`` is an RPR013 entry point."""
    mf, ff = graph.functions[node_id]
    if mf.is_test:
        return None
    short = ff.name.split(".")[-1]
    if short.startswith("do_") or short.startswith("handle"):
        return "handler"
    if "." in ff.name:
        cf = mf.classes.get(ff.name.split(".")[0])
        if cf is not None and any(
            base.split(".")[-1].endswith("Handler") for base in cf.bases
        ):
            return "handler"
    params = ff.params[1:] if ff.params[:1] == ["self"] else ff.params
    if "lease" in params:
        return "lease"
    return None


def rule_blocking_reachability(graph: ProgramGraph) -> list[Diagnostic]:
    """RPR013 — entry points that transitively reach a blocking sink."""
    findings: list[Diagnostic] = []
    for node_id in sorted(graph.functions):
        kind = _entry_kind(graph, node_id)
        if kind is None:
            continue
        mf, ff = graph.functions[node_id]
        parents = graph.reachable(node_id)
        for reached in [node_id, *sorted(parents)]:
            rmf, rff = graph.functions[reached]
            if rmf.is_test or not rff.blocking:
                continue
            if reached == node_id and kind == "handler":
                continue  # a direct sink in a handler is RPR010/RPR012's call
            chain = graph.path_to(node_id, reached, parents)
            chain_names = [n.split(":", 1)[1] for n in chain]
            for sink, sline in rff.blocking:
                what = (
                    "a service request handler"
                    if kind == "handler"
                    else "a cluster lease-holding path"
                )
                findings.append(
                    Diagnostic(
                        rule="RPR013",
                        path=mf.path,
                        line=ff.line,
                        message=f"{ff.name} is {what} that transitively "
                        f"reaches {sink} at {rmf.path}:{sline} via "
                        + " -> ".join(chain_names)
                        + "; bound the wait or waive the sink with "
                        "`# repro-lint: allow[RPR013] reason`",
                        trace=tuple(chain),
                    )
                )
    return findings


def rule_lock_order(graph: ProgramGraph) -> list[Diagnostic]:
    """RPR014 — cycles in the cross-class lock-acquisition graph."""
    # Tarjan SCC over lock nodes; any SCC with >= 2 nodes is a potential
    # deadlock (same-lock self-edges are excluded at graph build time).
    index_of: dict[tuple[str, str], int] = {}
    lowlink: dict[tuple[str, str], int] = {}
    on_stack: set[tuple[str, str]] = set()
    stack: list[tuple[str, str]] = []
    sccs: list[list[tuple[str, str]]] = []
    counter = [0]

    nodes = sorted(
        set(graph.lock_edges)
        | {dst for edges in graph.lock_edges.values() for dst, _ in edges}
    )

    def strongconnect(v: tuple[str, str]) -> None:
        # Iterative Tarjan (the lock graph is tiny, but recursion limits
        # are not a failure mode a linter should have).
        work = [(v, iter(graph.lock_edges.get(v, ())))]
        index_of[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, edges = work[-1]
            advanced = False
            for dst, _ in edges:
                if dst not in index_of:
                    index_of[dst] = lowlink[dst] = counter[0]
                    counter[0] += 1
                    stack.append(dst)
                    on_stack.add(dst)
                    work.append((dst, iter(graph.lock_edges.get(dst, ()))))
                    advanced = True
                    break
                if dst in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[dst])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                scc: list[tuple[str, str]] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                if len(scc) > 1:
                    sccs.append(sorted(scc))

    for v in nodes:
        if v not in index_of:
            strongconnect(v)

    findings: list[Diagnostic] = []
    for scc in sorted(sccs):
        members = set(scc)
        member_facts = [graph._class_facts(cls) for cls, _ in scc]
        if all(e is None or e[0].is_test for e in member_facts):
            continue  # cycle entirely inside test code
        evidence = sorted(
            ev
            for src, edges in graph.lock_edges.items()
            if src in members
            for dst, ev in edges
            if dst in members
        )
        cycle = " -> ".join(f"{cls.split(':', 1)[1]}.{attr}" for cls, attr in scc)
        anchor_cls, _ = scc[0]
        entry = graph._class_facts(anchor_cls)
        if entry is None:
            continue
        amf, acf = entry
        findings.append(
            Diagnostic(
                rule="RPR014",
                path=amf.path,
                line=acf.line,
                message=f"lock-order cycle {cycle} -> {scc[0][0].split(':', 1)[1]}"
                f".{scc[0][1]}: two threads taking these locks in opposite "
                "orders deadlock; impose a global acquisition order "
                f"(acquisition sites: {'; '.join(evidence[:3])})",
                trace=tuple(f"{cls}.{attr}" for cls, attr in scc),
            )
        )
    return findings


def rule_message_protocol(graph: ProgramGraph) -> list[Diagnostic]:
    """RPR015 — sent kinds/tags need dispatch arms; arm reads need keys."""
    findings: list[Diagnostic] = []

    def domain_modules() -> Iterable[ModuleFacts]:
        for mf in graph.modules.values():
            if mf.msg_domain and not mf.is_test:
                yield mf

    # Aggregate producers and consumers package-wide.
    produced: dict[object, list[tuple[ModuleFacts, dict]]] = {}
    produced_keys: dict[object, set[str]] = {}
    consumed: set[object] = set()
    for mf in domain_modules():
        for entry in mf.dict_kinds:
            value = graph.resolve_constant(mf.module, entry)
            if value is None:
                continue
            produced.setdefault(value, []).append((mf, entry))
            produced_keys.setdefault(value, set()).update(entry["keys"])
        for entry in mf.kind_compares:
            value = graph.resolve_constant(mf.module, entry)
            if value is not None:
                consumed.add(value)
    sent_tags: dict[object, list[tuple[ModuleFacts, dict]]] = {}
    consumed_tags: set[object] = set()
    for mf in domain_modules():
        for entry in mf.tag_sends:
            value = graph.resolve_constant(mf.module, entry)
            if isinstance(value, int):
                sent_tags.setdefault(value, []).append((mf, entry))
        for entry in mf.tag_consumes:
            value = graph.resolve_constant(mf.module, entry)
            if value is not None:
                consumed_tags.add(value)

    # (a) every produced kind needs a receiver-side dispatch arm.
    for value, sites in sorted(produced.items(), key=lambda kv: str(kv[0])):
        if value in consumed:
            continue
        for mf, entry in sites:
            findings.append(
                Diagnostic(
                    rule="RPR015",
                    path=mf.path,
                    line=entry["line"],
                    message=f"message kind {value!r} is sent here but no "
                    "receiver in the package compares against it "
                    "(missing dispatch arm, or a dead frame kind)",
                )
            )
    for value, sites in sorted(sent_tags.items(), key=lambda kv: str(kv[0])):
        if value in consumed_tags:
            continue
        for mf, entry in sites:
            findings.append(
                Diagnostic(
                    rule="RPR015",
                    path=mf.path,
                    line=entry["line"],
                    message=f"message tag {value!r} is sent here but no "
                    "recv(tag=...) filter or .tag comparison consumes it",
                )
            )

    # (b) dispatch-arm field reads must be producible.
    for mf in domain_modules():
        for arm in mf.kind_arms:
            value = graph.resolve_constant(mf.module, arm)
            if value is None or value not in produced_keys:
                continue
            allowed = produced_keys[value] | {"kind"}
            for fname, has_default, line in arm["fields"]:
                if has_default or fname in allowed:
                    continue
                findings.append(
                    Diagnostic(
                        rule="RPR015",
                        path=mf.path,
                        line=line,
                        message=f"consumer reads field {fname!r} of a "
                        f"kind-{value!r} message, but no producer of that "
                        f"kind sets it (producers set: "
                        f"{sorted(allowed)})",
                    )
                )
    return findings


def _assertion_family(graph: ProgramGraph) -> set[str]:
    """Class ids (``module:Class``) in the AssertionError family."""
    family: set[str] = set()
    changed = True
    while changed:
        changed = False
        for mf in graph.modules.values():
            for cf in mf.classes.values():
                cid = f"{mf.module}:{cf.name}"
                if cid in family or not cf.is_exception:
                    continue
                for base in cf.bases:
                    tail = base.split(".")[-1]
                    resolved = graph.resolve_class_expr(mf.module, base)
                    if tail in _ASSERTION_ROOTS or (
                        resolved is not None and resolved in family
                    ):
                        family.add(cid)
                        changed = True
                        break
    return family


def _resolves_to_assertion(
    graph: ProgramGraph, mf: ModuleFacts, expr: str, family: set[str]
) -> bool:
    tail = expr.split(".")[-1]
    if tail in _ASSERTION_ROOTS:
        return True
    resolved = graph.resolve_class_expr(mf.module, expr)
    return resolved is not None and resolved in family


def _unpicklable_exceptions(
    graph: ProgramGraph,
) -> list[tuple[ModuleFacts, ClassFacts]]:
    out = []
    for mf in graph.modules.values():
        if mf.is_test:
            continue
        for cf in mf.classes.values():
            if cf.is_exception and cf.init_required > 1 and not cf.has_reduce:
                out.append((mf, cf))
    return out


def rule_exception_flow(graph: ProgramGraph) -> list[Diagnostic]:
    """RPR016 — dropped invariant violations; unpicklable worker errors."""
    findings: list[Diagnostic] = []
    family = _assertion_family(graph)

    # (a) assertion-family exceptions caught and dropped.
    for mf in graph.modules.values():
        if mf.is_test:
            continue
        for types, reraises, func, line in mf.catches:
            if reraises:
                continue
            dropped = [
                t
                for t in types
                if _resolves_to_assertion(graph, mf, t, family)
            ]
            if dropped:
                findings.append(
                    Diagnostic(
                        rule="RPR016",
                        path=mf.path,
                        line=line,
                        message=f"{func} catches {'/'.join(sorted(dropped))} "
                        "without re-raising: an invariant violation exists "
                        "to fail loudly — handle it upstream or re-raise "
                        "after cleanup",
                    )
                )

    # (b) unpicklable exception classes in worker/node execution paths.
    worker_roots = [
        mf.module
        for mf in graph.modules.values()
        if not mf.is_test
        and mf.module.rpartition(".")[2] in _WORKER_MODULE_STEMS
    ]
    if worker_roots:
        reachable_modules = graph.import_closure(worker_roots)
        raise_sites: dict[str, list[str]] = {}
        for mf in graph.modules.values():
            if mf.is_test or mf.module not in reachable_modules:
                continue
            for exc_expr, func, line in mf.raises:
                tail = exc_expr.split(".")[-1]
                raise_sites.setdefault(tail, []).append(
                    f"{mf.path}:{line} ({func})"
                )
        for mf, cf in sorted(
            _unpicklable_exceptions(graph), key=lambda e: (e[0].path, e[1].line)
        ):
            if mf.module not in reachable_modules:
                continue
            sites = raise_sites.get(cf.name)
            if not sites:
                continue
            findings.append(
                Diagnostic(
                    rule="RPR016",
                    path=mf.path,
                    line=cf.line,
                    message=f"exception {cf.name} has an __init__ with "
                    f"{cf.init_required} required arguments and no "
                    "__reduce__, so it cannot survive the pickle round-trip "
                    "across the worker/node process boundary (raised at "
                    f"e.g. {sites[0]}); add __reduce__ returning the "
                    "constructor arguments",
                )
            )
    return findings


#: (rule id, rule callable) in reporting order.
INTERPROC_RULES: tuple = (
    ("RPR013", rule_blocking_reachability),
    ("RPR014", rule_lock_order),
    ("RPR015", rule_message_protocol),
    ("RPR016", rule_exception_flow),
)


def run_interproc_rules(
    graph: ProgramGraph,
    timings: dict[str, float] | None = None,
) -> list[Diagnostic]:
    """Run every interprocedural rule; waivers are applied by the caller."""
    import time as _time

    findings: list[Diagnostic] = []
    for rule_id, rule in INTERPROC_RULES:
        start = _time.perf_counter()
        findings.extend(rule(graph))
        if timings is not None:
            timings[rule_id] = timings.get(rule_id, 0.0) + (
                _time.perf_counter() - start
            )
    return findings
