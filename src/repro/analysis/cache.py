"""Incremental facts cache for the whole-program linter.

Per-module facts and per-file findings are keyed by a SHA-256 of the
file *content* plus the engine version salt, stored as small JSON blobs
under ``.repro-lint-cache/``.  A warm run therefore re-parses only
changed files; the interprocedural rules always re-run over the (cheap,
already-extracted) facts of every module, which is what makes the cache
sound under cross-module edits: a changed producer invalidates its own
facts, and every consumer's findings are recomputed from facts each run.

``__init__.py`` findings are never cached: the RPR005 export checker
reads *sibling* files, so an ``__init__``'s findings can change without
its own content changing.

The cache directory is safe to delete at any time and safe to share
through CI cache actions (entries are content-addressed; collisions
mean identical content).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

from .graph import FACTS_VERSION

__all__ = ["DEFAULT_CACHE_DIR", "LintCache", "content_digest"]

#: Default cache location, relative to the working directory (CI caches
#: this path explicitly).
DEFAULT_CACHE_DIR = ".repro-lint-cache"


def content_digest(content: bytes, path: str = "") -> str:
    """Content-addressed cache key: engine version salt + path + bytes.

    The path participates because cached facts embed it (two identical
    files at different locations are different modules).
    """
    h = hashlib.sha256()
    h.update(FACTS_VERSION.encode("utf-8"))
    h.update(b"\x00")
    h.update(path.encode("utf-8"))
    h.update(b"\x00")
    h.update(content)
    return h.hexdigest()


class LintCache:
    """A content-addressed store of per-file analysis payloads."""

    def __init__(self, directory: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def _path_for(self, digest: str) -> Path:
        return self.directory / digest[:2] / f"{digest}.json"

    def load(self, digest: str) -> dict[str, Any] | None:
        """The cached payload for ``digest``, or None."""
        path = self._path_for(digest)
        try:
            with path.open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if payload.get("version") != FACTS_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, digest: str, payload: dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``digest``.

        Failures are swallowed: a read-only checkout must still lint.
        """
        path = self._path_for(digest)
        record = dict(payload, version=FACTS_VERSION)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(record, fh, separators=(",", ":"))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass
