"""Bounded priority job queue with multi-process claims.

The queue is a maildir-style spool of marker files, so it needs no
broker process and survives kills of either side:

* ``queue/<key>`` — one empty marker per waiting job.  The key encodes
  ``(inverted priority, submission nanotime, job id)``, so a plain
  lexicographic directory sort yields "highest priority first, FIFO
  within a priority";
* ``claimed/<key>`` — markers atomically ``os.rename``-ed here by the
  worker that won the job.  Rename is atomic on POSIX: exactly one
  claimant succeeds, losers see ``FileNotFoundError`` and move on.

**Backpressure.**  The queue is bounded: when ``depth() >= capacity``,
:meth:`submit` raises :class:`BacklogFull` carrying a retry-after hint,
which the HTTP layer maps to ``429`` + ``Retry-After``.  Admission is
advisory under concurrent submitters (two racers may both pass the
check); the bound is a load-shedding valve, not an exact semaphore.

**Crash recovery.**  A marker stranded in ``claimed/`` by a killed
worker is moved back by :meth:`recover` when a pool starts; the job's
checkpoint (kept by the job store) makes the re-run incremental.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

__all__ = ["BacklogFull", "SpoolQueue"]

#: Priorities outside this range are clamped into it for the file key.
_PRIORITY_LIMIT = 9_999


class BacklogFull(RuntimeError):
    """The queue is at capacity; retry after ``retry_after`` seconds."""

    def __init__(self, depth: int, capacity: int, retry_after: int) -> None:
        super().__init__(
            f"job queue full ({depth}/{capacity}); retry in {retry_after}s"
        )
        self.depth = depth
        self.capacity = capacity
        self.retry_after = retry_after

    def __reduce__(self):
        # The default BaseException pickle protocol replays cls(*args)
        # with the formatted message, which does not match this
        # three-argument constructor; spell out the real arguments so
        # the exception survives the worker process boundary.
        return (type(self), (self.depth, self.capacity, self.retry_after))


def _key_for(job_id: str, priority: int) -> str:
    clamped = max(-_PRIORITY_LIMIT, min(_PRIORITY_LIMIT, int(priority)))
    return f"{_PRIORITY_LIMIT - clamped + 10_000:05d}.{time.time_ns():020d}.{job_id}"


class SpoolQueue:
    """Disk-backed bounded priority queue of job ids.

    Parameters
    ----------
    root:
        Spool directory (``queue/`` and ``claimed/`` live under it).
    capacity:
        Maximum jobs waiting + in flight before :meth:`submit` sheds
        load.  ``0`` means unbounded.
    """

    def __init__(self, root: str | os.PathLike, *, capacity: int = 64) -> None:
        self.root = Path(root)
        self.queued_dir = self.root / "queue"
        self.claimed_dir = self.root / "claimed"
        self.queued_dir.mkdir(parents=True, exist_ok=True)
        self.claimed_dir.mkdir(parents=True, exist_ok=True)
        self.capacity = int(capacity)

    # -- producer side ---------------------------------------------------

    def depth(self) -> int:
        """Jobs waiting in the queue."""
        return sum(1 for _ in self.queued_dir.iterdir())

    def in_flight(self) -> int:
        """Jobs currently claimed by workers."""
        return sum(1 for _ in self.claimed_dir.iterdir())

    def retry_after_hint(self, depth: int) -> int:
        """Crude drain-time estimate used for the 429 Retry-After header."""
        return min(60, max(1, depth // 2))

    def submit(self, job_id: str, priority: int = 0) -> str:
        """Enqueue ``job_id``; raises :class:`BacklogFull` at capacity."""
        depth = self.depth() + self.in_flight()
        if self.capacity and depth >= self.capacity:
            raise BacklogFull(depth, self.capacity, self.retry_after_hint(depth))
        key = _key_for(job_id, priority)
        (self.queued_dir / key).touch()
        return key

    # -- consumer side ---------------------------------------------------

    def claim(self) -> str | None:
        """Atomically claim the highest-priority job id, or ``None``.

        Safe to call from many worker processes: ``os.rename`` hands
        each marker to exactly one claimant.
        """
        for key in sorted(os.listdir(self.queued_dir)):
            try:
                os.rename(self.queued_dir / key, self.claimed_dir / key)
            except FileNotFoundError:
                continue  # another worker won this marker
            return key.rsplit(".", 1)[-1]
        return None

    def _find(self, directory: Path, job_id: str) -> Path | None:
        suffix = f".{job_id}"
        for key in os.listdir(directory):
            if key.endswith(suffix):
                return directory / key
        return None

    def contains(self, job_id: str) -> bool:
        """True while the job has a marker (queued or claimed)."""
        return (
            self._find(self.queued_dir, job_id) is not None
            or self._find(self.claimed_dir, job_id) is not None
        )

    def release(self, job_id: str) -> bool:
        """Move a claimed job back to the queue (drain / crash requeue)."""
        marker = self._find(self.claimed_dir, job_id)
        if marker is None:
            return False
        try:
            os.rename(marker, self.queued_dir / marker.name)
        except FileNotFoundError:
            return False
        return True

    def discard(self, job_id: str) -> bool:
        """Drop the job's marker wherever it is (terminal transitions)."""
        for directory in (self.claimed_dir, self.queued_dir):
            marker = self._find(directory, job_id)
            if marker is not None:
                try:
                    marker.unlink()
                except FileNotFoundError:
                    continue
                return True
        return False

    def recover(self) -> list[str]:
        """Requeue every claimed marker; returns the requeued job ids.

        Call only while no worker is running (pool startup): a marker
        in ``claimed/`` then necessarily belongs to a dead worker.
        """
        requeued = []
        for key in sorted(os.listdir(self.claimed_dir)):
            try:
                os.rename(self.claimed_dir / key, self.queued_dir / key)
            except FileNotFoundError:
                continue
            requeued.append(key.rsplit(".", 1)[-1])
        return requeued
