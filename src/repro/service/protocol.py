"""Wire protocol of the repro service.

Everything the server, the workers and the clients exchange is defined
here: the :class:`JobSpec` a client submits, the job lifecycle states,
the content digest that addresses results, and the JSON form of a
:class:`~repro.core.result.RepeatResult`.

Content addressing
------------------
Two submissions that must produce bit-identical results share one
digest: the SHA-256 of the *result-affecting* fields — sequence text,
alphabet, scoring model, search/delineation knobs — plus
:data:`ALGORITHM_VERSION`.  Execution knobs (``engine``, ``group``,
``priority``) are deliberately excluded: every engine and every batch
width returns the same alignments (the repo-wide equivalence
guarantee), so they must not fragment the cache.  Bump
:data:`ALGORITHM_VERSION` whenever a change alters what any spec
aligns to, and stale cache entries become unreachable automatically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any

from ..core.result import RepeatResult
from ..sequences.alphabet import alphabet_for

__all__ = [
    "ALGORITHM_VERSION",
    "MATRIX_NAMES",
    "JobState",
    "SpecError",
    "JobSpec",
    "ProgressEvent",
    "job_digest",
    "result_to_dict",
]

#: Version of the alignment/delineation semantics baked into digests.
#: Bump on any change that alters the results some spec produces.
ALGORITHM_VERSION = 1

#: Exchange-matrix names accepted over the wire (``None``/"default"
#: resolves per alphabet exactly like :class:`repro.core.api.RepeatFinder`).
MATRIX_NAMES = ("blosum62", "blosum50", "pam250", "pam120", "simple")

_ALPHABETS = ("protein", "dna", "rna")
_ALGORITHMS = ("new", "old")


class JobState:
    """Job lifecycle: ``queued → running → done | failed | cancelled``.

    A running job whose worker dies (or drains on shutdown) goes back
    to ``queued`` with its checkpoint kept, so the transition graph has
    one legal back-edge.
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = (DONE, FAILED, CANCELLED)


class SpecError(ValueError):
    """A submitted job spec is malformed (HTTP 400)."""


@dataclass(frozen=True)
class JobSpec:
    """One unit of service work: a single-sequence repeat search.

    Mirrors the knobs of :class:`repro.core.api.RepeatFinder` plus the
    scheduling-only ``priority`` (higher runs earlier).  ``matrix`` is
    a name from :data:`MATRIX_NAMES` or ``None`` for the per-alphabet
    default (BLOSUM62 for protein, +2/-1 otherwise).
    """

    sequence: str
    alphabet: str = "protein"
    seq_id: str = ""
    top_alignments: int = 20
    matrix: str | None = None
    gap_open: float = 8.0
    gap_extend: float = 1.0
    engine: str = "vector"
    group: int = 1
    algorithm: str = "new"
    min_score: float = 0.0
    min_copy_length: int = 2
    max_gap: int = 0
    min_score_fraction: float = 0.25
    priority: int = 0
    #: Execution knobs like engine/group: seed the best-first heap from
    #: the k-mer index tier.  Results are bit-identical either way, so
    #: neither field enters the digest (indexed and unindexed runs of
    #: one spec share a cache entry).  The single-job path only *seeds*
    #: — it never skip-routes, which is what keeps this a pure
    #: execution knob.
    index: bool = False
    index_k: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.sequence, str) or not self.sequence:
            raise SpecError("sequence must be a non-empty string")
        if self.alphabet not in _ALPHABETS:
            raise SpecError(f"alphabet must be one of {_ALPHABETS}")
        if self.algorithm not in _ALGORITHMS:
            raise SpecError(f"algorithm must be one of {_ALGORITHMS}")
        if self.matrix is not None and self.matrix not in MATRIX_NAMES:
            raise SpecError(f"matrix must be one of {MATRIX_NAMES} or null")
        if self.matrix not in (None, "simple") and self.alphabet != "protein":
            raise SpecError(f"matrix {self.matrix!r} requires alphabet 'protein'")
        if self.top_alignments < 1:
            raise SpecError("top_alignments must be >= 1")
        if self.group < 1:
            raise SpecError("group must be >= 1")
        if self.group > 1 and self.algorithm != "new":
            raise SpecError("group > 1 requires the new algorithm")
        if self.gap_open < 0 or self.gap_extend < 0:
            raise SpecError("gap penalties must be non-negative")
        if self.index_k < 0:
            raise SpecError("index_k must be >= 0 (0 = per-alphabet default)")
        # Reject unencodable residues at admission, not in a worker.
        try:
            alphabet_for(self.alphabet).encode(self.normalized_sequence())
        except ValueError as exc:
            raise SpecError(str(exc)) from None

    def normalized_sequence(self) -> str:
        """Case-folded residue text (the canonical digest form)."""
        return self.sequence.upper()

    # -- wire form -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobSpec":
        """Validate and build a spec from a JSON object."""
        if not isinstance(payload, dict):
            raise SpecError("job spec must be a JSON object")
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise SpecError(f"unknown job spec field(s): {sorted(unknown)}")
        if "sequence" not in payload:
            raise SpecError("job spec requires a 'sequence' field")
        try:
            return cls(**payload)
        except TypeError as exc:
            raise SpecError(str(exc)) from None

    # -- content addressing ----------------------------------------------

    def digest_fields(self) -> dict[str, Any]:
        """The result-affecting fields, in canonical form."""
        return {
            "version": ALGORITHM_VERSION,
            "sequence": self.normalized_sequence(),
            "alphabet": self.alphabet,
            "matrix": self.matrix,
            "gap_open": float(self.gap_open),
            "gap_extend": float(self.gap_extend),
            "top_alignments": int(self.top_alignments),
            "algorithm": self.algorithm,
            "min_score": float(self.min_score),
            "min_copy_length": int(self.min_copy_length),
            "max_gap": int(self.max_gap),
            "min_score_fraction": float(self.min_score_fraction),
        }


def job_digest(spec: JobSpec) -> str:
    """SHA-256 content address of ``spec``'s result."""
    canonical = json.dumps(
        spec.digest_fields(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class ProgressEvent:
    """One line of a job's progress stream (``GET /jobs/<id>/events``)."""

    event: str
    t: float = 0.0
    data: dict[str, Any] = field(default_factory=dict)

    def to_line(self) -> str:
        payload = {"event": self.event, "t": self.t, **self.data}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def result_to_dict(
    result: RepeatResult, *, digest: str, spec: JobSpec
) -> dict[str, Any]:
    """JSON payload stored in the result cache for one finished job.

    Floats round-trip exactly through ``json`` (shortest-repr), so two
    payloads compare bit-identical iff the underlying results do.
    """
    stats = result.stats
    return {
        "digest": digest,
        "sequence_id": spec.seq_id,
        "length": len(spec.normalized_sequence()),
        "top_alignments": [
            {
                "index": int(a.index),
                "r": int(a.r),
                "score": float(a.score),
                "pairs": [[int(i), int(j)] for i, j in a.pairs],
            }
            for a in result.top_alignments
        ],
        "repeats": [
            {
                "family": int(rep.family),
                "copies": [[int(s), int(e)] for s, e in rep.copies],
                "columns": int(rep.columns),
                "n_copies": int(rep.n_copies),
                "unit_length": float(rep.unit_length),
            }
            for rep in result.repeats
        ],
        "stats": {
            "alignments": int(stats.alignments),
            "realignments": int(stats.realignments),
            "cells": int(stats.cells),
            "tracebacks": int(stats.tracebacks),
            "engine": stats.engine,
            "group": int(stats.group),
            "speculative_waste": int(stats.speculative_waste),
        },
    }
