"""Content-addressed result cache.

Results are addressed by the SHA-256 job digest
(:func:`repro.service.protocol.job_digest`): identical submissions —
same sequence, scoring model and search knobs — resolve to the same
digest and are served without realignment.

Two layers:

* **disk** — one JSON file per digest under ``root/<aa>/<digest>.json``
  (sharded by the first two hex characters), written atomically via a
  temp file + ``os.replace`` so a killed worker can never leave a
  half-written entry;
* **memory** — a small per-process LRU over parsed payloads, so the
  server answers repeat hits without re-reading or re-parsing.

The disk layer is shared by every process of one service instance
(server + workers); the LRU is per-process.  Writers may race on one
digest, but both write byte-identical content (that is the point of
content addressing), so last-replace-wins is correct.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any

__all__ = ["ResultCache"]


class ResultCache:
    """On-disk content-addressed store with an in-memory LRU front.

    Parameters
    ----------
    root:
        Directory holding the sharded JSON entries (created on demand).
    memory_items:
        Maximum parsed payloads kept in the per-process LRU
        (``0`` disables the memory layer entirely).
    """

    def __init__(self, root: str | os.PathLike, *, memory_items: int = 64) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.memory_items = int(memory_items)
        self._lock = threading.Lock()
        self._mem: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, digest: str) -> Path:
        """Disk location of ``digest``'s entry (may not exist)."""
        if len(digest) < 3 or any(c not in "0123456789abcdef" for c in digest):
            raise ValueError(f"not a hex digest: {digest!r}")
        return self.root / digest[:2] / f"{digest}.json"

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            if digest in self._mem:
                return True
        return self.path_for(digest).exists()

    def resolve(self, prefix: str) -> str | None:
        """Expand a digest prefix to the unique full digest it names.

        Accepts at least six hex characters (fewer is too collision-prone
        to be a useful handle); returns ``None`` when the prefix is
        malformed, matches nothing on disk, or is ambiguous.
        """
        if len(prefix) < 6 or any(c not in "0123456789abcdef" for c in prefix):
            return None
        if len(prefix) >= 64:
            return prefix[:64]
        matches = [p.stem for p in (self.root / prefix[:2]).glob(f"{prefix}*.json")]
        return matches[0] if len(matches) == 1 else None

    def get(self, digest: str) -> dict[str, Any] | None:
        """The cached payload for ``digest``, or ``None`` on a miss."""
        with self._lock:
            payload = self._mem.get(digest)
            if payload is not None:
                self._mem.move_to_end(digest)
                self.hits_memory += 1
                return payload
        path = self.path_for(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            # A corrupt entry (torn disk, manual edit) must read as a
            # miss, not poison every future hit; drop it.
            try:
                path.unlink()
            except OSError:
                pass
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits_disk += 1
            self._remember(digest, payload)
        return payload

    def put(self, digest: str, payload: dict[str, Any]) -> Path:
        """Store ``payload`` under ``digest`` (atomic); returns the path."""
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{digest}.{os.getpid()}.tmp"
        tmp.write_text(
            json.dumps(payload, sort_keys=True, separators=(",", ":")),
            encoding="utf-8",
        )
        os.replace(tmp, path)
        with self._lock:
            self.stores += 1
            self._remember(digest, payload)
        return path

    def _remember(self, digest: str, payload: dict[str, Any]) -> None:  # repro-lint: holds-lock
        if self.memory_items <= 0:
            return
        self._mem[digest] = payload
        self._mem.move_to_end(digest)
        while len(self._mem) > self.memory_items:
            self._mem.popitem(last=False)

    def stats(self) -> dict[str, int]:
        """Hit/miss counters plus the current LRU size."""
        with self._lock:
            return {
                "hits_memory": self.hits_memory,
                "hits_disk": self.hits_disk,
                "misses": self.misses,
                "stores": self.stores,
                "memory_entries": len(self._mem),
            }

    def entries(self) -> int:
        """Number of digests stored on disk (scans the shard dirs)."""
        return sum(1 for _ in self.root.glob("??/*.json"))
