"""Durable job state: records, progress events, checkpoints.

The store is the single source of truth shared by the server process
and every worker process — all coordination happens through files under
one data directory, so a killed worker loses nothing that was already
durable:

``jobs/<id>.json``
    the :class:`JobRecord` (atomic rewrite on every transition);
``events/<id>.jsonl``
    append-only progress stream (one JSON object per line) — what
    ``GET /jobs/<id>/events`` tails;
``checkpoints/<id>.npz``
    the search state, written via :mod:`repro.core.checkpoint` after
    every accepted chunk, so a resumed job continues mid-run;
``cancel/<id>``
    a flag file; workers poll it between chunks;
``owners/<digest>.<tenant>``
    a grant marker: the tenant was admitted for a job with this result
    digest, so ``GET /results/<digest>`` may serve it (the gateway's
    tenant-scoping of the shared content-addressed cache).

Writers are disjoint by construction — the server writes a record at
admission and cancellation, the claiming worker owns it while running —
so plain atomic rewrites are enough; no cross-process record lock is
needed.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from ..core.checkpoint import save_checkpoint
from .protocol import JobState, ProgressEvent

__all__ = ["JobRecord", "JobStore"]


@dataclass
class JobRecord:
    """Everything durable about one job except its result payload.

    The result itself lives in the content-addressed cache under
    ``digest``; the record only carries lifecycle metadata.
    """

    id: str
    spec: dict[str, Any]
    digest: str
    state: str = JobState.QUEUED
    priority: int = 0
    #: Owning tenant (gateway admission); "" on pre-gateway records.
    tenant: str = ""
    created: float = 0.0
    started: float = 0.0
    finished: float = 0.0
    attempts: int = 0
    worker: str = ""
    error: str = ""
    served_from_cache: bool = False
    found: int = 0

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobRecord":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})


class JobStore:
    """File-backed job metadata under one service data directory."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.events_dir = self.root / "events"
        self.checkpoints_dir = self.root / "checkpoints"
        self.cancel_dir = self.root / "cancel"
        self.workers_dir = self.root / "workers"
        self.owners_dir = self.root / "owners"
        for d in (
            self.jobs_dir,
            self.events_dir,
            self.checkpoints_dir,
            self.cancel_dir,
            self.workers_dir,
            self.owners_dir,
        ):
            d.mkdir(parents=True, exist_ok=True)

    # -- records ---------------------------------------------------------

    def new_job(
        self, spec: dict[str, Any], digest: str, priority: int = 0, tenant: str = ""
    ) -> JobRecord:
        """Create and persist a fresh queued record."""
        record = JobRecord(
            id=uuid.uuid4().hex[:16],
            spec=spec,
            digest=digest,
            priority=priority,
            tenant=tenant,
            created=time.time(),
        )
        self.put(record)
        return record

    def _job_path(self, job_id: str) -> Path:
        if not job_id or "/" in job_id or job_id.startswith("."):
            raise ValueError(f"bad job id: {job_id!r}")
        return self.jobs_dir / f"{job_id}.json"

    def put(self, record: JobRecord) -> None:
        """Atomically (re)write ``record``."""
        path = self._job_path(record.id)
        tmp = path.parent / f".{record.id}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(record.to_dict(), sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    def get(self, job_id: str) -> JobRecord | None:
        try:
            text = self._job_path(job_id).read_text(encoding="utf-8")
        except (OSError, ValueError):
            return None
        return JobRecord.from_dict(json.loads(text))

    def update(self, job_id: str, **fields: Any) -> JobRecord | None:
        """Read-modify-write ``fields`` into the record (last write wins)."""
        record = self.get(job_id)
        if record is None:
            return None
        for key, value in fields.items():
            setattr(record, key, value)
        self.put(record)
        return record

    def delete(self, job_id: str) -> None:
        """Remove every trace of a job (admission rollback)."""
        for path in (
            self._job_path(job_id),
            self.events_dir / f"{job_id}.jsonl",
            self.checkpoint_path(job_id),
            self.cancel_dir / job_id,
        ):
            try:
                path.unlink()
            except OSError:
                pass

    def list_ids(self) -> list[str]:
        return sorted(p.stem for p in self.jobs_dir.glob("*.json"))

    def states(self) -> dict[str, int]:
        """Job counts by lifecycle state (scans every record)."""
        counts = dict.fromkeys(JobState.ALL, 0)
        for job_id in self.list_ids():
            record = self.get(job_id)
            if record is not None:
                counts[record.state] = counts.get(record.state, 0) + 1
        return counts

    def find_active_by_digest(self, digest: str) -> JobRecord | None:
        """A queued/running record with this digest, if any (dedup probe)."""
        for job_id in self.list_ids():
            record = self.get(job_id)
            if record is not None and record.digest == digest and not record.terminal:
                return record
        return None

    # -- result ownership --------------------------------------------------

    def grant_result_access(self, digest: str, tenant: str) -> None:
        """Record that ``tenant`` may read the result under ``digest``.

        The result cache is content-addressed and shared — two tenants
        submitting the same sequence converge on one digest — so
        *reading* a cached result is gated by an explicit per-tenant
        grant made at admission, never by guessing a digest.
        """
        if not tenant:
            return
        (self.owners_dir / f"{digest}.{tenant}").touch()

    def result_access(self, digest: str, tenant: str) -> bool:
        """True when ``tenant`` was granted access to ``digest``."""
        if not tenant:
            return False
        return (self.owners_dir / f"{digest}.{tenant}").exists()

    # -- progress events -------------------------------------------------

    def append_event(self, job_id: str, event: str, **data: Any) -> None:
        """Append one progress line (atomic for short O_APPEND writes)."""
        line = ProgressEvent(event=event, t=time.time(), data=data).to_line()
        with open(self.events_dir / f"{job_id}.jsonl", "a", encoding="utf-8") as fh:
            fh.write(line + "\n")

    def read_events(self, job_id: str, since: int = 0) -> list[dict[str, Any]]:
        """Parsed events after line index ``since`` (0 = from the start)."""
        try:
            with open(self.events_dir / f"{job_id}.jsonl", encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError:
            return []
        events = []
        for line in lines[since:]:
            try:
                events.append(json.loads(line))
            except ValueError:
                continue  # torn trailing line mid-append
        return events

    # -- checkpoints -----------------------------------------------------

    def checkpoint_path(self, job_id: str) -> Path:
        return self.checkpoints_dir / f"{job_id}.npz"

    def save_job_checkpoint(self, job_id: str, state) -> Path:
        """Checkpoint ``state`` for ``job_id`` (atomic via core.checkpoint)."""
        path = self.checkpoint_path(job_id)
        save_checkpoint(state, path)
        return path

    def clear_checkpoint(self, job_id: str) -> None:
        try:
            self.checkpoint_path(job_id).unlink()
        except OSError:
            pass

    # -- cancellation ----------------------------------------------------

    def request_cancel(self, job_id: str) -> None:
        (self.cancel_dir / job_id).touch()

    def cancel_requested(self, job_id: str) -> bool:
        return (self.cancel_dir / job_id).exists()

    def clear_cancel(self, job_id: str) -> None:
        try:
            (self.cancel_dir / job_id).unlink()
        except OSError:
            pass

    # -- worker stats ----------------------------------------------------

    def write_worker_stats(self, tag: str, stats: dict[str, Any]) -> None:
        """Publish one worker's counters (atomic rewrite)."""
        path = self.workers_dir / f"{tag}.json"
        tmp = path.parent / f".{tag}.tmp"
        tmp.write_text(json.dumps(stats, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    def worker_stats(self) -> dict[str, dict[str, Any]]:
        """Every published worker's counters, keyed by worker tag."""
        out: dict[str, dict[str, Any]] = {}
        for path in sorted(self.workers_dir.glob("*.json")):
            try:
                out[path.stem] = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
        return out
