"""urllib client for the repro service (``repro submit/status/fetch``).

Stdlib-only, mirroring the server's endpoints one method each.  HTTP
errors surface as :class:`ServiceError` (with the server's JSON error
message when present); a ``429`` becomes :class:`ClientBacklogFull`
carrying the server's ``Retry-After`` hint, and a ``401``/``403``
becomes :class:`ServiceAuthError` so callers can tell "fix your key"
apart from "try again later".

``submit`` honors that hint: shed submissions are retried with
jittered exponential backoff — ``Retry-After`` is the floor of each
delay, the exponential curve the ceiling, jitter desynchronizes a
herd of clients hammering one coordinator — up to a bounded number of
attempts, after which :class:`ClientBacklogFull` propagates.  Only 429
retries; any other error is not load shedding and fails fast.

**Authentication.**  Pass ``api_key`` (or set ``REPRO_API_KEY`` in the
environment) and every request carries ``Authorization: Bearer
<key>``.  ``submit`` additionally accepts an ``idempotency_key``,
sent as the ``Idempotency-Key`` header: retried duplicates replay the
original job instead of admitting a second one.
"""

from __future__ import annotations

import json
import os
import random
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Iterator

__all__ = [
    "ServiceError",
    "ServiceAuthError",
    "ClientBacklogFull",
    "ServiceClient",
]


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"HTTP {code}: {message}")
        self.code = code
        self.message = message


class ServiceAuthError(ServiceError):
    """HTTP 401/403 — missing/unknown API key or disabled tenant."""


class ClientBacklogFull(ServiceError):
    """HTTP 429 — quota or backlog load shedding; retry later."""

    def __init__(self, message: str, retry_after: int) -> None:
        super().__init__(429, message)
        self.retry_after = retry_after


class ServiceClient:
    """Thin JSON client bound to one service base URL.

    ``submit_attempts``/``backoff_base``/``backoff_cap`` tune the 429
    retry loop; ``rng`` and ``sleep`` are injectable so tests can pin
    the jitter and skip real waiting.
    """

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8765",
        *,
        timeout: float = 30.0,
        api_key: str | None = None,
        submit_attempts: int = 4,
        backoff_base: float = 0.25,
        backoff_cap: float = 30.0,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        # Explicit key wins; REPRO_API_KEY covers scripted use where
        # threading a flag through every call site is noise.
        self.api_key = api_key if api_key is not None else os.environ.get(
            "REPRO_API_KEY"
        )
        if submit_attempts < 1:
            raise ValueError("submit_attempts must be >= 1")
        self.submit_attempts = submit_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = rng or random.Random()
        self._sleep = sleep

    # -- plumbing --------------------------------------------------------

    def _headers(self, extra: dict[str, str] | None = None) -> dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.api_key:
            headers["Authorization"] = f"Bearer {self.api_key}"
        if extra:
            headers.update(extra)
        return headers

    def _request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        headers: dict[str, str] | None = None,
    ) -> dict[str, Any]:
        data = None
        all_headers = self._headers(headers)
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            all_headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=all_headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise self._to_error(exc) from None

    @staticmethod
    def _to_error(exc: urllib.error.HTTPError) -> ServiceError:
        try:
            message = json.loads(exc.read().decode("utf-8")).get("error", "")
        except ValueError:
            message = exc.reason or ""
        if exc.code == 429:
            retry_after = int(exc.headers.get("Retry-After") or 1)
            return ClientBacklogFull(message, retry_after)
        if exc.code in (401, 403):
            return ServiceAuthError(exc.code, message)
        return ServiceError(exc.code, message)

    # -- endpoints -------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")

    def submit(
        self, spec: dict[str, Any], *, idempotency_key: str | None = None
    ) -> dict[str, Any]:
        """POST /jobs; the returned record includes ``from_cache``.

        Retries shed (429) submissions with jittered exponential
        backoff, honoring the server's ``Retry-After`` as the minimum
        delay; after ``submit_attempts`` tries the final
        :class:`ClientBacklogFull` propagates.  With an
        ``idempotency_key`` the retries are double-submit-safe: a
        duplicate that reaches the server replays the original job
        (``replayed: true`` in the response).
        """
        headers = {"Idempotency-Key": idempotency_key} if idempotency_key else None
        for attempt in range(self.submit_attempts):
            try:
                return self._request("POST", "/jobs", spec, headers)
            except ClientBacklogFull as exc:
                if attempt + 1 >= self.submit_attempts:
                    raise
                self._sleep(self._backoff_delay(attempt, exc.retry_after))
        raise AssertionError("unreachable")  # pragma: no cover

    def _backoff_delay(self, attempt: int, retry_after: int) -> float:
        """Delay before retry ``attempt + 1`` (jittered, Retry-After floor)."""
        ceiling = min(self.backoff_cap, self.backoff_base * (2**attempt))
        jittered = ceiling * (0.5 + 0.5 * self._rng.random())
        return max(float(retry_after), jittered)

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def result(self, ref: str) -> dict[str, Any]:
        """GET /results/<digest-or-job-id>."""
        return self._request("GET", f"/results/{ref}")

    def events(
        self, job_id: str, *, since: int = 0, follow: bool = False
    ) -> Iterator[dict[str, Any]]:
        """Yield progress events; with ``follow`` streams until terminal."""
        url = f"{self.base_url}/jobs/{job_id}/events?since={since}&follow={int(follow)}"
        request = urllib.request.Request(
            url, headers=self._headers({"Accept": "application/x-ndjson"})
        )
        timeout = None if follow else self.timeout
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                for raw in response:
                    line = raw.decode("utf-8").strip()
                    if line:
                        yield json.loads(line)
        except urllib.error.HTTPError as exc:
            raise self._to_error(exc) from None

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll: float = 0.2
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns the record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record.get("state") in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {record.get('state')!r} after {timeout}s"
                )
            time.sleep(poll)
