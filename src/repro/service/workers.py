"""The worker pool and the resumable job executor.

Workers are separate OS processes (spawned, not forked — the server
process carries HTTP threads) that share nothing with the server except
the data directory: they claim jobs from the spool queue, execute them
incrementally, and publish results into the content-addressed cache.

Execution is *chunked*: the worker accepts ``checkpoint_every`` top
alignments at a time, writing an atomic checkpoint
(:mod:`repro.core.checkpoint`) and a progress event after every chunk.
That one structure buys all three durability features:

* **streaming progress** — each chunk appends a ``progress`` line that
  ``GET /jobs/<id>/events`` tails;
* **graceful drain** — on SIGTERM the worker finishes the current
  chunk, checkpoints, releases the job back to the queue and exits;
* **crash resume** — after SIGKILL the stranded claim is requeued by
  :func:`recover` and the next worker restores the last checkpoint, so
  only the chunk in flight is repaid.  Resumed runs return the same
  alignments and repeat families as uninterrupted ones (the repo-wide
  equivalence guarantee); only the work counters in ``stats`` differ.

Before aligning anything, a worker probes the result cache: a duplicate
of an already-finished job is answered with zero alignment work, which
the per-worker counters published via the job store make auditable.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import asdict, dataclass
from typing import Callable

from ..core.api import RepeatFinder
from ..core.checkpoint import load_checkpoint
from ..obs import span as obs_span
from ..core.result import RepeatResult
from ..core.session import TopAlignmentSession
from ..core.topalign import TopAlignmentState, find_top_alignments
from ..scoring.blosum import blosum50, blosum62
from ..scoring.exchange import match_mismatch
from ..scoring.gaps import GapPenalties
from ..scoring.pam import pam120, pam250
from ..sequences.alphabet import alphabet_for
from ..sequences.sequence import Sequence
from .cache import ResultCache
from .jobstore import JobRecord, JobStore
from .protocol import JobSpec, JobState, result_to_dict
from .queue import SpoolQueue

__all__ = [
    "WorkerPool",
    "WorkerStats",
    "build_finder",
    "execute_job",
    "open_stores",
    "recover",
    "worker_main",
]

#: Test/ops knob: extra seconds slept after each accepted chunk, so a
#: run can be made arbitrarily slow without changing its results (used
#: by the kill/resume tests to guarantee a mid-job signal lands).
CHUNK_DELAY_ENV = "REPRO_SERVICE_CHUNK_DELAY"

_NAMED_MATRICES = {
    "blosum62": blosum62,
    "blosum50": blosum50,
    "pam250": pam250,
    "pam120": pam120,
}


def open_stores(
    data_dir: str | os.PathLike, *, capacity: int = 64, memory_items: int = 64
) -> tuple[JobStore, SpoolQueue, ResultCache]:
    """The three shared stores under one service data directory."""
    root = os.fspath(data_dir)
    store = JobStore(root)
    queue = SpoolQueue(os.path.join(root, "spool"), capacity=capacity)
    cache = ResultCache(os.path.join(root, "cache"), memory_items=memory_items)
    return store, queue, cache


def build_finder(spec: JobSpec) -> RepeatFinder:
    """The :class:`RepeatFinder` a spec describes (matrix name resolved)."""
    if spec.matrix is None:
        exchange = None
    elif spec.matrix == "simple":
        exchange = match_mismatch(alphabet_for(spec.alphabet), 2.0, -1.0)
    else:
        exchange = _NAMED_MATRICES[spec.matrix]()
    return RepeatFinder(
        exchange=exchange,
        gaps=GapPenalties(spec.gap_open, spec.gap_extend),
        top_alignments=spec.top_alignments,
        engine=spec.engine,
        algorithm=spec.algorithm,
        group=spec.group,
        min_score=spec.min_score,
        min_copy_length=spec.min_copy_length,
        max_gap=spec.max_gap,
        min_score_fraction=spec.min_score_fraction,
    )


@dataclass
class WorkerStats:
    """Counters one worker publishes through the job store."""

    pid: int = 0
    jobs_done: int = 0
    jobs_failed: int = 0
    jobs_cancelled: int = 0
    jobs_suspended: int = 0
    cache_hits: int = 0
    alignments: int = 0
    cells: int = 0
    #: Jobs whose fresh search started with index-seeded heap bounds
    #: (``spec.index``); checkpoint resumes keep their restored heap.
    index_seeded: int = 0
    updated: float = 0.0


def recover(store: JobStore, queue: SpoolQueue) -> list[str]:
    """Requeue jobs stranded by dead workers (call before a pool starts).

    Claimed spool markers go back to the queue and their records flip
    ``running → queued``; checkpoints are kept, so the re-run resumes
    instead of restarting.
    """
    requeued = queue.recover()
    for job_id in requeued:
        record = store.get(job_id)
        if record is not None and not record.terminal:
            store.update(job_id, state=JobState.QUEUED, worker="")
            store.append_event(job_id, "requeued", reason="worker lost")
    return requeued


def _finish(
    store: JobStore,
    cache: ResultCache,
    record: JobRecord,
    spec: JobSpec,
    result: RepeatResult,
) -> None:
    payload = result_to_dict(result, digest=record.digest, spec=spec)
    cache.put(record.digest, payload)
    store.update(
        record.id,
        state=JobState.DONE,
        finished=time.time(),
        found=len(result.top_alignments),
        error="",
    )
    store.append_event(
        record.id,
        "done",
        digest=record.digest,
        found=len(result.top_alignments),
        alignments=result.stats.alignments,
    )
    store.clear_checkpoint(record.id)
    store.clear_cancel(record.id)


def execute_job(
    store: JobStore,
    cache: ResultCache,
    record: JobRecord,
    *,
    should_stop: Callable[[], bool] | None = None,
    checkpoint_every: int = 1,
    chunk_delay: float = 0.0,
    stats: WorkerStats | None = None,
) -> str:
    """Run one claimed job to a terminal (or suspended) state.

    Returns the outcome: ``"done"``, ``"failed"``, ``"cancelled"`` or
    ``"suspended"`` (graceful stop — checkpointed, caller must release
    the claim back to the queue).
    """
    should_stop = should_stop or (lambda: False)
    stats = stats if stats is not None else WorkerStats()
    job_id = record.id
    try:
        spec = JobSpec.from_dict(record.spec)
    except ValueError as exc:
        store.update(job_id, state=JobState.FAILED, finished=time.time(), error=str(exc))
        store.append_event(job_id, "failed", error=str(exc))
        return "failed"

    # A duplicate of a finished job is served straight from the cache —
    # zero alignment work, visible in the worker counters.
    if cache.get(record.digest) is not None:
        stats.cache_hits += 1
        store.update(
            job_id,
            state=JobState.DONE,
            finished=time.time(),
            served_from_cache=True,
            found=spec.top_alignments,
        )
        store.append_event(job_id, "cache-hit", digest=record.digest)
        store.clear_checkpoint(job_id)
        store.clear_cancel(job_id)
        return "done"

    if store.cancel_requested(job_id):
        store.update(job_id, state=JobState.CANCELLED, finished=time.time())
        store.append_event(job_id, "cancelled")
        store.clear_checkpoint(job_id)
        store.clear_cancel(job_id)
        return "cancelled"

    try:
        finder = build_finder(spec)
        sequence = Sequence(
            spec.normalized_sequence(), spec.alphabet, id=spec.seq_id
        )
        with obs_span(
            "execute_job", job=job_id, algorithm=spec.algorithm, k=spec.top_alignments
        ):
            if spec.algorithm == "old":
                # The quartic baseline has no incremental state to
                # checkpoint; it runs one-shot (identical results, §3).
                result = finder.find(sequence)
            else:
                result = _run_incremental(
                    store,
                    finder,
                    sequence,
                    spec,
                    job_id,
                    should_stop=should_stop,
                    checkpoint_every=max(1, checkpoint_every),
                    chunk_delay=chunk_delay,
                    stats=stats,
                )
            if result is None:
                outcome = "cancelled" if store.cancel_requested(job_id) else "suspended"
                if outcome == "cancelled":
                    store.update(job_id, state=JobState.CANCELLED, finished=time.time())
                    store.append_event(job_id, "cancelled")
                    store.clear_checkpoint(job_id)
                    store.clear_cancel(job_id)
                else:
                    refreshed = store.get(job_id)
                    store.append_event(
                        job_id,
                        "suspended",
                        found=refreshed.found if refreshed else 0,
                    )
                return outcome
        stats.alignments += result.stats.alignments
        stats.cells += result.stats.cells
        _finish(store, cache, record, spec, result)
    except Exception as exc:  # noqa: BLE001 - a job must never kill its worker
        store.update(job_id, state=JobState.FAILED, finished=time.time(), error=str(exc))
        store.append_event(job_id, "failed", error=str(exc))
        store.clear_checkpoint(job_id)
        stats.jobs_failed += 1
        return "failed"
    stats.jobs_done += 1
    return "done"


def _run_incremental(
    store: JobStore,
    finder: RepeatFinder,
    sequence: Sequence,
    spec: JobSpec,
    job_id: str,
    *,
    should_stop: Callable[[], bool],
    checkpoint_every: int,
    chunk_delay: float,
    stats: WorkerStats | None = None,
) -> RepeatResult | None:
    """Chunked Figure 5 loop with a checkpoint after every chunk.

    Returns ``None`` when interrupted (cancel / graceful stop) — the
    checkpoint then holds everything accepted so far.
    """
    exchange = finder.resolve_exchange(sequence)
    state: TopAlignmentState | None = None
    ckpt = store.checkpoint_path(job_id)
    if ckpt.exists():
        try:
            state = load_checkpoint(
                ckpt, sequence, exchange, finder.gaps, engine=spec.engine
            )
            store.append_event(job_id, "resumed", found=state.n_found)
        except (ValueError, OSError) as exc:
            store.append_event(job_id, "checkpoint-invalid", error=str(exc))
    if state is None:
        seed_bounds = None
        if spec.index:
            # Execution knob, not a result knob: seeded heap bounds keep
            # the accepted tops bit-identical while splits whose bound
            # never tops the heap are never aligned.  The single-job
            # path deliberately has no skip class.
            from ..index.bounds import seed_score_bounds

            seed_bounds = seed_score_bounds(sequence, exchange)
            if stats is not None:
                stats.index_seeded += 1
        state = TopAlignmentState(
            sequence,
            exchange,
            finder.gaps,
            engine=spec.engine,
            seed_bounds=seed_bounds,
        )

    # group == 1 keeps one live session (queue survives across chunks);
    # the speculative batched driver rebuilds its heap per chunk, which
    # costs a little repaid bookkeeping but no realignment work.
    session = (
        TopAlignmentSession.from_state(state, min_score=spec.min_score)
        if spec.group == 1
        else None
    )
    k = spec.top_alignments
    exhausted = False
    while state.n_found < k and not exhausted:
        if store.cancel_requested(job_id) or should_stop():
            store.save_job_checkpoint(job_id, state)
            store.update(job_id, found=state.n_found)
            return None
        target = min(k, state.n_found + checkpoint_every)
        with obs_span("chunk", job=job_id, target=target):
            if session is not None:
                session.extend(target - state.n_found)
                exhausted = session.exhausted
            else:
                find_top_alignments(
                    sequence,
                    target,
                    exchange,
                    finder.gaps,
                    state=state,
                    group=spec.group,
                    min_score=spec.min_score,
                )
                exhausted = state.n_found < target
        store.save_job_checkpoint(job_id, state)
        store.update(job_id, found=state.n_found)
        store.append_event(
            job_id, "progress", found=state.n_found, target=k, checkpointed=True
        )
        if chunk_delay > 0:
            time.sleep(chunk_delay)

    alignments = list(state.found)
    repeats = finder.delineate(alignments, len(sequence))
    return RepeatResult(top_alignments=alignments, repeats=repeats, stats=state.stats)


def worker_main(
    data_dir: str,
    index: int = 0,
    *,
    poll_interval: float = 0.05,
    checkpoint_every: int = 1,
) -> int:
    """One worker process: claim → execute → repeat until signalled.

    SIGTERM/SIGINT request a graceful stop: the current chunk finishes,
    the job is checkpointed and released back to the queue, the final
    counters are published, and the process exits 0.
    """
    stop = {"flag": False}

    def _request_stop(_signum, _frame) -> None:
        stop["flag"] = True

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)

    store, queue, cache = open_stores(data_dir, capacity=0)
    tag = f"worker-{index}"
    stats = WorkerStats(pid=os.getpid())
    chunk_delay = float(os.environ.get(CHUNK_DELAY_ENV, "0") or 0)

    def publish() -> None:
        stats.updated = time.time()
        store.write_worker_stats(tag, asdict(stats))

    publish()
    while not stop["flag"]:
        job_id = queue.claim()
        if job_id is None:
            time.sleep(poll_interval)
            continue
        record = store.get(job_id)
        if record is None or record.terminal:
            queue.discard(job_id)
            continue
        store.update(
            job_id,
            state=JobState.RUNNING,
            started=time.time(),
            worker=tag,
            attempts=record.attempts + 1,
        )
        store.append_event(job_id, "claimed", worker=tag, attempt=record.attempts + 1)
        record = store.get(job_id)
        outcome = execute_job(
            store,
            cache,
            record,
            should_stop=lambda: stop["flag"],
            checkpoint_every=checkpoint_every,
            chunk_delay=chunk_delay,
            stats=stats,
        )
        if outcome == "suspended":
            stats.jobs_suspended += 1
            store.update(job_id, state=JobState.QUEUED, worker="")
            queue.release(job_id)
            store.append_event(job_id, "requeued", reason="worker draining")
        else:
            if outcome == "cancelled":
                stats.jobs_cancelled += 1
            queue.discard(job_id)
        publish()
    publish()
    return 0


def _worker_entry(data_dir: str, index: int, poll_interval: float, checkpoint_every: int) -> None:
    raise SystemExit(
        worker_main(
            data_dir,
            index,
            poll_interval=poll_interval,
            checkpoint_every=checkpoint_every,
        )
    )


class WorkerPool:
    """Spawned worker processes over one service data directory.

    ``start`` first runs :func:`recover` (requeueing work stranded by a
    previous pool), then spawns ``workers`` processes.  ``stop`` drains
    gracefully by default: SIGTERM, join, escalate to SIGKILL only
    after ``timeout`` — a killed worker loses at most its current
    chunk, never the job.
    """

    def __init__(
        self,
        data_dir: str | os.PathLike,
        *,
        workers: int = 2,
        poll_interval: float = 0.05,
        checkpoint_every: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.data_dir = os.fspath(data_dir)
        self.workers = workers
        self.poll_interval = poll_interval
        self.checkpoint_every = checkpoint_every
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: list[multiprocessing.process.BaseProcess] = []

    def start(self) -> list[str]:
        """Recover stranded jobs, then spawn the workers; returns requeued ids."""
        if self._procs:
            raise RuntimeError("pool already started")
        store, queue, _ = open_stores(self.data_dir, capacity=0)
        requeued = recover(store, queue)
        for index in range(self.workers):
            proc = self._ctx.Process(
                target=_worker_entry,
                args=(
                    self.data_dir,
                    index,
                    self.poll_interval,
                    self.checkpoint_every,
                ),
                name=f"repro-worker-{index}",
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        return requeued

    @property
    def processes(self) -> list[multiprocessing.process.BaseProcess]:
        return list(self._procs)

    def alive_count(self) -> int:
        return sum(1 for p in self._procs if p.is_alive())

    def stop(self, *, graceful: bool = True, timeout: float = 30.0) -> bool:
        """Stop every worker; returns True when all exited cleanly."""
        for proc in self._procs:
            if proc.is_alive():
                if graceful:
                    proc.terminate()  # SIGTERM → drain to checkpoint
                else:
                    proc.kill()
        deadline = time.monotonic() + timeout
        clean = True
        for proc in self._procs:
            proc.join(max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(5.0)
                clean = False
            elif proc.exitcode != 0:
                clean = False
        self._procs = []
        return clean

    def join(self, timeout: float | None = None) -> None:
        for proc in self._procs:
            proc.join(timeout)
