"""``repro.service`` — the repeat finder as a long-running server.

The library runs one scan to completion in-process; the service wraps
the same engines behind a durable job queue so repeat detection can be
scheduled, cached and resumed under concurrent load:

* :mod:`~repro.service.protocol` — job specs, content digests and the
  JSON wire forms shared by server, workers and clients;
* :mod:`~repro.service.cache` — content-addressed result cache
  (on-disk store + in-memory LRU);
* :mod:`~repro.service.jobstore` — durable job records, progress
  event logs and checkpoint files;
* :mod:`~repro.service.queue` — bounded, priority, disk-backed job
  queue with backpressure and atomic multi-process claims;
* :mod:`~repro.service.workers` — the multi-process worker pool and
  the resumable job executor;
* :mod:`~repro.service.server` — the stdlib HTTP JSON API
  (``repro serve``);
* :mod:`~repro.service.client` — the matching urllib client
  (``repro submit/status/fetch``).
"""

from .cache import ResultCache
from .client import (
    ClientBacklogFull,
    ServiceAuthError,
    ServiceClient,
    ServiceError,
)
from .jobstore import JobRecord, JobStore
from .protocol import (
    ALGORITHM_VERSION,
    JobSpec,
    JobState,
    SpecError,
    job_digest,
    result_to_dict,
)
from .queue import BacklogFull, SpoolQueue
from .server import ReproService, ServiceConfig
from .workers import WorkerPool, execute_job

__all__ = [
    "ALGORITHM_VERSION",
    "BacklogFull",
    "ClientBacklogFull",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobStore",
    "ReproService",
    "ResultCache",
    "ServiceAuthError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SpecError",
    "SpoolQueue",
    "WorkerPool",
    "execute_job",
    "job_digest",
    "result_to_dict",
]
