"""Prometheus exporter for the service (``GET /metrics``).

The worker pool runs **spawned processes**, so the server's in-process
registry never sees worker-side counters.  The durable stores do: the
job store carries per-worker counter files and every job record's
lifecycle timestamps, the spool queue its depth, the result cache its
hit/miss tallies.  Each scrape therefore builds a *fresh* short-lived
:class:`~repro.obs.registry.MetricsRegistry` from those stores — the
same read-through discipline ``RunStats`` uses, applied at process
granularity — and appends the server process's own registry (HTTP
request counters) on the way out.  Store-derived families use the
``repro_service_*`` / ``repro_worker_*`` prefixes and the process
registry uses ``repro_http_*``, so the two renderings never collide.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from ..obs import LATENCY_BUCKETS, MetricsRegistry, get_registry, render_prometheus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .server import ReproService

__all__ = ["build_service_registry", "render_service_metrics"]

#: WorkerStats counters republished per worker tag.
_WORKER_COUNTERS = (
    ("jobs_done", "Jobs this worker ran to completion"),
    ("jobs_failed", "Jobs this worker failed"),
    ("jobs_cancelled", "Jobs this worker observed cancelled mid-run"),
    ("jobs_suspended", "Jobs this worker drained to a checkpoint"),
    ("cache_hits", "Jobs this worker served from the result cache"),
    ("alignments", "Bottom-row alignments this worker computed"),
    ("cells", "Matrix cells this worker evaluated"),
    ("index_seeded", "Jobs this worker started with index-seeded heap bounds"),
)


def build_service_registry(
    service: "ReproService", *, workers_alive: int | None = None
) -> MetricsRegistry:
    """A scrape-time registry filled from the service's durable stores."""
    registry = MetricsRegistry()

    registry.gauge(
        "repro_service_uptime_seconds", help="Seconds since the service started"
    ).set(time.time() - service.started)

    # -- queue -----------------------------------------------------------
    registry.gauge(
        "repro_service_queue_depth", help="Jobs waiting in the spool queue"
    ).set(service.queue.depth())
    registry.gauge(
        "repro_service_queue_in_flight", help="Jobs claimed by workers right now"
    ).set(service.queue.in_flight())
    registry.gauge(
        "repro_service_queue_capacity",
        help="Backlog bound above which submissions shed load (0 = unbounded)",
    ).set(service.queue.capacity)

    # -- result cache ----------------------------------------------------
    cache_stats = service.cache.stats()
    hits = registry.counter(
        "repro_service_cache_hits_total",
        help="Result-cache hits by tier",
        tier="memory",
    )
    hits.inc(cache_stats["hits_memory"])
    registry.counter("repro_service_cache_hits_total", tier="disk").inc(
        cache_stats["hits_disk"]
    )
    registry.counter(
        "repro_service_cache_misses_total", help="Result-cache misses"
    ).inc(cache_stats["misses"])
    registry.counter(
        "repro_service_cache_stores_total", help="Result payloads written to the cache"
    ).inc(cache_stats["stores"])
    registry.gauge(
        "repro_service_cache_memory_entries", help="Payloads in the in-memory LRU front"
    ).set(cache_stats["memory_entries"])
    registry.gauge(
        "repro_service_cache_disk_entries", help="Digests stored on disk"
    ).set(service.cache.entries())

    # -- jobs ------------------------------------------------------------
    for state, count in sorted(service.store.states().items()):
        registry.gauge(
            "repro_service_jobs", help="Job records by lifecycle state", state=state
        ).set(count)
    latency = registry.histogram(
        "repro_service_job_seconds",
        buckets=LATENCY_BUCKETS,
        help="Submission-to-terminal latency of computed (non-cache-born) jobs",
    )
    attempts = registry.counter(
        "repro_service_job_attempts_total", help="Worker claims across all jobs"
    )
    retries = registry.counter(
        "repro_service_job_retries_total",
        help="Re-claims beyond each job's first attempt (worker restarts/requeues)",
    )
    tenant_states: dict[tuple[str, str], int] = {}
    for job_id in service.store.list_ids():
        record = service.store.get(job_id)
        if record is None:
            continue
        attempts.inc(record.attempts)
        retries.inc(max(0, record.attempts - 1))
        key = (record.tenant or "public", record.state)
        tenant_states[key] = tenant_states.get(key, 0) + 1
        if record.terminal and not record.served_from_cache and record.finished > 0:
            latency.observe(max(0.0, record.finished - record.created))
    for (tenant, state), count in sorted(tenant_states.items()):
        registry.gauge(
            "repro_service_tenant_jobs",
            help="Job records by owning tenant and lifecycle state",
            tenant=tenant,
            state=state,
        ).set(count)

    # -- workers ---------------------------------------------------------
    if workers_alive is not None:
        registry.gauge(
            "repro_service_workers_alive", help="Live worker processes in this pool"
        ).set(workers_alive)
    for tag, stats in sorted(service.store.worker_stats().items()):
        for key, help_text in _WORKER_COUNTERS:
            registry.counter(
                f"repro_worker_{key}_total", help=help_text, worker=tag
            ).inc(stats.get(key, 0))

    return registry


def render_service_metrics(
    service: "ReproService", *, workers_alive: int | None = None
) -> str:
    """Full ``/metrics`` body: store-derived families + the process registry.

    With a cluster coordinator attached, its ``repro_cluster_*``
    families (node gauges, lease counters, shard latency) are appended
    from the coordinator's private always-on registry; the gateway's
    ``repro_gateway_*`` families (per-tenant admissions, rejections,
    lane depths) likewise — distinct prefixes, so none of the
    renderings collide.
    """
    text = render_prometheus(
        build_service_registry(service, workers_alive=workers_alive)
    )
    process = get_registry()
    if process.collecting:
        text += render_prometheus(process)
    coordinator = getattr(service, "coordinator", None)
    if coordinator is not None:
        text += coordinator.render_metrics()
    gateway = getattr(service, "gateway", None)
    if gateway is not None:
        text += gateway.render_metrics()
    return text
