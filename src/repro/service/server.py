"""The stdlib HTTP JSON API (``repro serve``).

Endpoints
---------
``POST /jobs``
    submit a :class:`~repro.service.protocol.JobSpec` JSON body.
    Returns ``202`` with the queued record, ``200`` when the result
    cache already holds the digest (the job is born ``done``), ``429``
    + ``Retry-After`` when the bounded queue sheds load, ``400`` on a
    malformed spec.
``GET /jobs/<id>``
    the job record (lifecycle state, attempts, progress counter).
``GET /jobs/<id>/events``
    the job's progress stream as JSON lines.  ``?since=N`` skips the
    first N lines; ``?follow=1`` keeps the connection open, tailing new
    events until the job reaches a terminal state.
``POST /jobs/<id>/cancel``
    request cancellation (queued jobs die immediately; running jobs at
    their next chunk boundary).
``GET /results/<digest>``
    the content-addressed result payload.
``GET /jobs/<id>/report?format=gff3|json|html``
    the job's annotation artifact, rendered from the cached result
    (no re-alignment): GFF3 repeat track, repeat-profile JSON or the
    self-contained HTML report.  Tenant-scoped: the owning tenant (or
    a holder of the digest's ownership grant) gets ``200``, any other
    tenant ``403``.
``GET /stats``
    queue depth, job states, cache counters, per-worker counters.
``GET /healthz``
    liveness probe.

The server is a ``ThreadingHTTPServer`` over the same on-disk stores
the worker processes use, so it holds no job state worth losing.
SIGTERM/SIGINT shut it down gracefully: the pool drains running jobs to
checkpoints and requeues them, then the listener closes.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from .. import obs
from ..gateway import (
    Admission,
    AuthError,
    ForbiddenError,
    Gateway,
    IdempotencyConflict,
    QuotaExceeded,
    TenantDirectory,
)
from .jobstore import JobRecord
from .metrics import render_service_metrics
from .protocol import JobSpec, JobState, SpecError
from .queue import BacklogFull
from .workers import WorkerPool, _finish, open_stores, recover

__all__ = ["ServiceConfig", "ReproService", "serve"]

#: How long a followed event stream may stay open, and how often it
#: polls the append-only event log for new lines.
_FOLLOW_TIMEOUT = 3600.0
_FOLLOW_POLL = 0.1


@dataclass
class ServiceConfig:
    """Knobs of one service instance."""

    data_dir: str = "repro-service-data"
    host: str = "127.0.0.1"
    port: int = 8765
    workers: int = 2
    queue_capacity: int = 64
    checkpoint_every: int = 1
    poll_interval: float = 0.05
    cache_memory_items: int = 64
    #: When set, ``serve`` also runs a cluster coordinator on this port
    #: (0 = ephemeral) and routes jobs cluster-wide while worker nodes
    #: are alive.  ``None`` disables clustering entirely.
    cluster_port: int | None = None
    #: Tenant config file (JSON; see repro.gateway.tenants).  ``None``
    #: runs the gateway open: every request is the unlimited ``public``
    #: tenant and no endpoint requires an API key.
    tenants_file: str | None = None
    #: How many jobs the gateway keeps in the spool at once (its
    #: fair-share dispatch window).  0 = auto: ``max(4, 2 × workers)``.
    dispatch_window: int = 0


class ReproService:
    """Server-side operations over the shared stores (HTTP-agnostic).

    The HTTP handler below is a thin JSON shim over these methods, so
    tests (and the smoke script) can also drive the service in-process.

    With a cluster coordinator attached, submissions are routed
    cluster-wide whenever at least one worker node is alive: the nodes
    compute the job's first-pass bottom rows, the coordinator finishes
    the best-first loop, and the result lands in the same
    content-addressed cache local workers fill — bit-identical by the
    :mod:`repro.cluster.execution` contract.  With no live nodes the
    job falls back to the local spool queue, so attaching a coordinator
    never makes a service less available.
    """

    def __init__(self, config: ServiceConfig, coordinator=None) -> None:
        self.config = config
        # The service is the always-on consumer of repro.obs: turn the
        # process registry on so HTTP counters (and any in-process
        # alignment work) land on /metrics.  REPRO_METRICS=0 still wins.
        obs.enable()
        self.store, self.queue, self.cache = open_stores(
            config.data_dir,
            capacity=config.queue_capacity,
            memory_items=config.cache_memory_items,
        )
        self.gateway = Gateway(
            self.store,
            self.queue,
            self.cache,
            directory=TenantDirectory(config.tenants_file),
            dispatch_window=config.dispatch_window,
            workers=config.workers,
        )
        # The hooks read self.coordinator at call time, so attaching a
        # coordinator after construction routes subsequent jobs too.
        self.gateway.cluster_route = lambda: (
            self.coordinator is not None
            and self.coordinator.registry.alive_count() > 0
        )
        self.gateway.cluster_spawn = self._spawn_cluster_job
        self.started = time.time()
        #: An optional :class:`repro.cluster.Coordinator` (duck-typed to
        #: avoid a hard import; the cluster package imports service).
        self.coordinator = coordinator

    def attach_coordinator(self, coordinator) -> None:
        self.coordinator = coordinator

    # -- operations ------------------------------------------------------

    def submit(self, payload: dict, *, api_key: str | None = None,
               idempotency_key: str | None = None) -> tuple[JobRecord, bool]:
        """Admit one job; returns ``(record, from_cache)``.

        Every submission goes through the gateway: tenant resolution,
        quotas, idempotency and fair-share lane placement (see
        :meth:`admit` for the full admission object).  Raises
        :class:`SpecError` (400), ``AuthError`` (401),
        ``ForbiddenError`` (403), ``QuotaExceeded`` /
        :class:`BacklogFull` (429) or ``IdempotencyConflict`` (409).
        """
        admission = self.admit(
            payload, api_key=api_key, idempotency_key=idempotency_key
        )
        return admission.record, admission.from_cache

    def admit(self, payload: dict, *, api_key: str | None = None,
              idempotency_key: str | None = None) -> Admission:
        """Gateway admission with the replay flag the HTTP layer reports."""
        return self.gateway.submit(
            payload, api_key=api_key, idempotency_key=idempotency_key
        )

    def _spawn_cluster_job(self, job_id: str, spec: JobSpec) -> None:
        threading.Thread(
            target=self._run_cluster_job,
            args=(job_id, spec),
            name=f"cluster-job-{job_id}",
            daemon=True,
        ).start()

    def _run_cluster_job(self, job_id: str, spec: JobSpec) -> None:
        """Drive one cluster-routed job to a terminal state."""
        record = self.store.get(job_id)
        if record is None:
            return
        self.store.update(
            job_id,
            state=JobState.RUNNING,
            started=time.time(),
            worker="cluster",
            attempts=record.attempts + 1,
        )
        self.store.append_event(job_id, "claimed", worker="cluster")
        try:
            result = self.coordinator.execute_job_spec(spec, tenant=record.tenant)
        except Exception as exc:  # noqa: BLE001 - job failure, not server failure
            self.store.update(
                job_id, state=JobState.FAILED, finished=time.time(), error=str(exc)
            )
            self.store.append_event(job_id, "failed", error=str(exc))
            return
        record = self.store.get(job_id)
        if record is not None:
            _finish(self.store, self.cache, record, spec, result)

    def status(self, job_id: str, *, tenant: str | None = None) -> JobRecord | None:
        """The job record — scoped: a foreign tenant sees ``None`` (404).

        ``tenant=None`` means *unscoped* (open mode / internal callers),
        not "a tenant with no name".
        """
        record = self.store.get(job_id)
        if record is not None and tenant is not None and record.tenant != tenant:
            return None
        return record

    def cancel(self, job_id: str, *, tenant: str | None = None) -> JobRecord | None:
        """Flag a job for cancellation; queued jobs die immediately."""
        record = self.status(job_id, tenant=tenant)
        if record is None or record.terminal:
            return record
        self.store.request_cancel(job_id)
        # A queued job is either already in the spool, still in its
        # gateway lane, or mid-pump between the two — the second spool
        # probe closes that race.
        if record.state == JobState.QUEUED and (
            self.queue.discard(job_id)
            or self.gateway.discard(record.tenant, job_id)
            or self.queue.discard(job_id)
        ):
            record = self.store.update(
                job_id, state=JobState.CANCELLED, finished=time.time()
            )
            self.store.append_event(job_id, "cancelled")
            self.store.clear_cancel(job_id)
        return record

    def result(self, ref: str, *, tenant: str | None = None) -> dict | None:
        """Result payload by digest (full or unique prefix) or job id.

        In tenant mode the payload is only served when ``tenant`` holds
        an ownership grant for the digest — made at admission — so a
        shared cache entry (digest collision-by-sharing) is never
        readable to a tenant who did not submit that work.
        """
        digest: str | None = None
        payload = None
        try:
            payload = self.cache.get(ref)
        except ValueError:
            payload = None
        if payload is not None:
            digest = ref
        else:
            record = self.store.get(ref)
            if record is not None:
                if tenant is not None and record.tenant != tenant:
                    return None
                payload = self.cache.get(record.digest)
                digest = record.digest
            else:
                full = self.cache.resolve(ref)
                if full is not None and full != ref:
                    payload = self.cache.get(full)
                    digest = full
        if payload is None:
            return None
        if tenant is not None and not self.store.result_access(digest, tenant):
            return None
        return payload

    #: Report formats and the content type each is served under.
    REPORT_FORMATS = {
        "gff3": "text/plain; charset=utf-8",
        "json": "application/json",
        "html": "text/html; charset=utf-8",
    }

    def report(
        self, job_id: str, fmt: str = "gff3", *, tenant: str | None = None
    ) -> tuple[str, str] | None:
        """Render a job's annotation artifact from the cached result.

        Returns ``(body, content_type)``, or ``None`` (404) when the
        job or its cached result does not exist.  Unlike :meth:`status`
        — where a foreign tenant cannot even learn a job id exists — a
        report on a *known* job that the tenant does not own raises
        ``ForbiddenError`` (403): the CI smoke drill and clients rely
        on that distinction to tell "not yet done" from "not yours".
        Never re-runs alignment: the result payload and the spec's
        residue text are everything the annotation layer needs.
        """
        from ..annot import annotate_scan
        from ..annot.metrics import record_report_denied
        from ..core.scan import SequenceReport, result_from_dict
        from ..sequences.sequence import Sequence

        if fmt not in self.REPORT_FORMATS:
            raise SpecError(
                f"unknown report format {fmt!r} "
                f"(expected one of {sorted(self.REPORT_FORMATS)})"
            )
        record = self.store.get(job_id)
        if record is None:
            return None
        if tenant is not None and record.tenant != tenant and not (
            self.store.result_access(record.digest, tenant)
        ):
            record_report_denied()
            raise ForbiddenError(
                f"tenant {tenant!r} does not own job {job_id}"
            )
        payload = self.cache.get(record.digest)
        if payload is None:
            return None
        spec = record.spec or {}
        seq_id = spec.get("seq_id") or payload.get("sequence_id") or job_id
        text = (spec.get("sequence") or "").upper()
        sequence = (
            Sequence(text, spec.get("alphabet", "protein"), id=seq_id)
            if text
            else None
        )
        length = len(sequence) if sequence is not None else int(
            payload.get("length", 0)
        )
        seq_report = SequenceReport(
            id=seq_id, length=length, result=result_from_dict(payload)
        )
        annotation = annotate_scan([seq_report], [sequence])
        if fmt == "gff3":
            body = annotation.gff3()
        elif fmt == "json":
            body = annotation.profile_json()
        else:
            body = annotation.html(title=f"repro job {job_id} ({seq_id})")
        return body, self.REPORT_FORMATS[fmt]

    def stats(self) -> dict:
        workers = self.store.worker_stats()
        stats = {
            "uptime": time.time() - self.started,
            "queue": {
                "depth": self.queue.depth(),
                "in_flight": self.queue.in_flight(),
                "capacity": self.queue.capacity,
            },
            "jobs": self.store.states(),
            "cache": {**self.cache.stats(), "disk_entries": self.cache.entries()},
            "workers": workers,
            "alignments_total": sum(w.get("alignments", 0) for w in workers.values()),
            "cache_hits_total": sum(w.get("cache_hits", 0) for w in workers.values()),
            "gateway": self.gateway.snapshot(),
        }
        if self.coordinator is not None:
            stats["cluster"] = self.coordinator.stats()
        return stats


@dataclass
class _ServerState:
    """What the request handler needs (attached to the HTTP server)."""

    service: ReproService
    shutting_down: threading.Event = field(default_factory=threading.Event)
    #: The in-process worker pool, when this server owns one — lets
    #: ``/metrics`` report live worker processes.
    pool: WorkerPool | None = None


class _Handler(BaseHTTPRequestHandler):
    """JSON shim over :class:`ReproService`."""

    #: HTTP/1.0 keeps streamed (close-delimited) bodies trivially correct.
    protocol_version = "HTTP/1.0"
    server_version = "repro-service"

    @property
    def svc(self) -> ReproService:
        return self.server.state.service  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args) -> None:  # quiet by default
        if os.environ.get("REPRO_SERVICE_LOG"):
            super().log_message(fmt, *args)

    # -- plumbing --------------------------------------------------------

    def _send_json(self, code: int, payload: dict, headers: dict | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str, headers: dict | None = None) -> None:
        self._send_json(code, {"error": message}, headers)

    def _send_text(self, code: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    #: Route families that get their own ``endpoint`` label value; any
    #: other path is folded into "other" so stray URLs cannot mint an
    #: unbounded label set.
    _KNOWN_ENDPOINTS = frozenset(
        {"jobs", "results", "stats", "healthz", "metrics"}
    )

    def _count_request(self, parts: list[str]) -> None:
        registry = obs.get_registry()
        if not registry.collecting:
            return
        endpoint = parts[0] if parts else "/"
        if endpoint not in self._KNOWN_ENDPOINTS and endpoint != "/":
            endpoint = "other"
        registry.counter(
            "repro_http_requests_total",
            help="HTTP requests by method and endpoint family",
            method=self.command,
            endpoint=endpoint,
        ).inc()

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise SpecError("request body required")
        if length > 64 * 1024 * 1024:
            raise SpecError("request body too large")
        try:
            return json.loads(self.rfile.read(length).decode("utf-8"))
        except ValueError as exc:
            raise SpecError(f"invalid JSON body: {exc}") from None

    # -- tenancy ---------------------------------------------------------

    def _api_key(self) -> str | None:
        auth = self.headers.get("Authorization") or ""
        if auth.lower().startswith("bearer "):
            return auth[7:].strip() or None
        return self.headers.get("X-Api-Key")

    def _tenant_name(self) -> str | None:
        """The caller's tenant, or ``None`` when the gateway runs open.

        Raises ``AuthError``/``ForbiddenError``, mapped to 401/403 by
        the route dispatchers.  ``/healthz``, ``/stats`` and
        ``/metrics`` never call this: they are operator endpoints.
        """
        gateway = self.svc.gateway
        if gateway.directory.open:
            return None
        return gateway.resolve(self._api_key()).name

    # -- routes ----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        self._count_request(parts)
        try:
            if parts == ["jobs"]:
                self._post_job()
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                self._post_cancel(parts[1])
            else:
                self._error(404, f"no such endpoint: POST {url.path}")
        except SpecError as exc:
            self._error(400, str(exc))
        except AuthError as exc:
            self._error(401, str(exc), headers={"WWW-Authenticate": "Bearer"})
        except ForbiddenError as exc:
            self._error(403, str(exc))
        except IdempotencyConflict as exc:
            self._error(409, str(exc))
        except (BacklogFull, QuotaExceeded) as exc:
            self._error(
                429, str(exc), headers={"Retry-After": str(exc.retry_after)}
            )

    def _post_job(self) -> None:
        body = self._read_body()
        admission = self.svc.admit(
            body,
            api_key=self._api_key(),
            idempotency_key=self.headers.get("Idempotency-Key"),
        )
        self._send_json(
            200 if admission.from_cache or admission.replayed else 202,
            {
                **admission.record.to_dict(),
                "from_cache": admission.from_cache,
                "replayed": admission.replayed,
            },
        )

    def _post_cancel(self, job_id: str) -> None:
        record = self.svc.cancel(job_id, tenant=self._tenant_name())
        if record is None:
            self._error(404, f"no such job: {job_id}")
        else:
            self._send_json(200, record.to_dict())

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        self._count_request(parts)
        try:
            self._get_route(url, parts, query)
        except AuthError as exc:
            self._error(401, str(exc), headers={"WWW-Authenticate": "Bearer"})
        except ForbiddenError as exc:
            self._error(403, str(exc))

    def _get_route(self, url, parts: list[str], query: dict) -> None:
        if parts == ["healthz"]:
            self._send_json(200, {"ok": True})
        elif parts == ["stats"]:
            self._send_json(200, self.svc.stats())
        elif parts == ["metrics"]:
            pool = self.server.state.pool  # type: ignore[attr-defined]
            self._send_text(
                200,
                render_service_metrics(
                    self.svc,
                    workers_alive=pool.alive_count() if pool is not None else None,
                ),
                obs.CONTENT_TYPE,
            )
        elif len(parts) == 2 and parts[0] == "jobs":
            record = self.svc.status(parts[1], tenant=self._tenant_name())
            if record is None:
                self._error(404, f"no such job: {parts[1]}")
            else:
                self._send_json(200, record.to_dict())
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
            self._get_events(parts[1], query)
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "report":
            self._get_report(parts[1], query)
        elif len(parts) == 2 and parts[0] == "results":
            payload = self.svc.result(parts[1], tenant=self._tenant_name())
            if payload is None:
                self._error(404, f"no cached result for: {parts[1]}")
            else:
                self._send_json(200, payload)
        else:
            self._error(404, f"no such endpoint: GET {url.path}")

    def _get_report(self, job_id: str, query: dict) -> None:
        fmt = (query.get("format") or ["gff3"])[0]
        try:
            rendered = self.svc.report(
                job_id, fmt, tenant=self._tenant_name()
            )
        except SpecError as exc:
            self._error(400, str(exc))
            return
        if rendered is None:
            self._error(404, f"no reportable result for job: {job_id}")
        else:
            body, content_type = rendered
            self._send_text(200, body, content_type)

    def _get_events(self, job_id: str, query: dict) -> None:
        store = self.svc.store
        if self.svc.status(job_id, tenant=self._tenant_name()) is None:
            self._error(404, f"no such job: {job_id}")
            return
        since = int((query.get("since") or ["0"])[0])
        follow = (query.get("follow") or ["0"])[0] not in ("0", "", "false")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        offset = since
        deadline = time.monotonic() + _FOLLOW_TIMEOUT
        shutting_down = self.server.state.shutting_down  # type: ignore[attr-defined]
        while True:
            events = store.read_events(job_id, offset)
            for event in events:
                self.wfile.write(
                    (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
                )
            if events:
                offset += len(events)
                self.wfile.flush()
            if not follow:
                break
            record = store.get(job_id)
            if record is None or record.terminal:
                # Drain whatever the terminal transition appended last.
                if not store.read_events(job_id, offset):
                    break
                continue
            if shutting_down.is_set() or time.monotonic() > deadline:
                break
            # Tailing an append-only file has no wakeup to wait on; a
            # short poll bounds added latency at ~100 ms per event.
            time.sleep(_FOLLOW_POLL)  # repro-lint: allow[RPR010] bounded follow-mode tail poll, exits on terminal state/shutdown/deadline


def serve(config: ServiceConfig) -> int:
    """Run the full service (pool + HTTP) until SIGTERM/SIGINT; returns exit code."""
    service = ReproService(config)
    state = _ServerState(service=service)

    coordinator = None
    if config.cluster_port is not None:
        # Deferred import: repro.cluster imports repro.service, so the
        # dependency must only ever point one way at module-import time.
        from ..cluster.coordinator import Coordinator, CoordinatorConfig

        coordinator = Coordinator(
            CoordinatorConfig(host=config.host, port=config.cluster_port)
        ).start()
        service.attach_coordinator(coordinator)
        print(
            f"repro cluster coordinator listening on {coordinator.address}",
            flush=True,
        )

    pool: WorkerPool | None = None
    if config.workers > 0:
        pool = WorkerPool(
            config.data_dir,
            workers=config.workers,
            poll_interval=config.poll_interval,
            checkpoint_every=config.checkpoint_every,
        )
        requeued = pool.start()
        state.pool = pool
        if requeued:
            print(f"recovered {len(requeued)} interrupted job(s)", flush=True)
    else:
        # No pool in this process (external workers): still requeue
        # anything a dead pool left claimed.
        recover(service.store, service.queue)

    # Lanes/quota ledgers rebuild from the job store, then the pump
    # thread keeps granting lane items as spool slots free up.  SIGHUP
    # hot-reloads the tenant file without dropping a request.
    restored = service.gateway.recover()
    if restored:
        print(f"restored {restored} lane-queued job(s)", flush=True)
    service.gateway.directory.install_sighup()
    service.gateway.start_pump(config.poll_interval)

    httpd = ThreadingHTTPServer((config.host, config.port), _Handler)
    httpd.daemon_threads = True
    httpd.state = state  # type: ignore[attr-defined]
    host, port = httpd.server_address[:2]
    mode = "open" if service.gateway.directory.open else (
        f"tenants={','.join(service.gateway.directory.names())}"
    )
    print(
        f"repro service listening on http://{host}:{port} "
        f"(workers={config.workers}, queue_capacity={config.queue_capacity}, "
        f"{mode}, data={config.data_dir})",
        flush=True,
    )

    exit_code = {"value": 0}

    def _shutdown(_signum=None, _frame=None) -> None:
        if state.shutting_down.is_set():
            return
        state.shutting_down.set()
        # shutdown() must come from another thread than serve_forever's.
        threading.Thread(target=httpd.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)

    try:
        httpd.serve_forever(poll_interval=0.1)
    finally:
        httpd.server_close()
        service.gateway.stop_pump()
        if coordinator is not None:
            coordinator.stop()
        if pool is not None:
            clean = pool.stop(graceful=True, timeout=30.0)
            if not clean:
                exit_code["value"] = 1
            print(
                "repro service stopped"
                + ("" if clean else " (worker drain was not clean)"),
                flush=True,
            )
        else:
            print("repro service stopped", flush=True)
    return exit_code["value"]
