"""``repro_index_*`` metric families.

Thin helpers over :func:`repro.obs.get_registry` so instrumentation at
the call sites stays one line and costs a single ``collecting`` check
when metrics are off (the same pattern the core drivers use).
"""

from __future__ import annotations

from ..obs import get_registry

__all__ = [
    "observe_build_seconds",
    "observe_tightness",
    "record_route",
    "record_store_hit",
    "record_store_miss",
]

#: Build-time buckets (seconds): profiles are near-linear, so even long
#: records land well under a second.
BUILD_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)

#: Seeded-bound tightness (bound / accepted score): 1.0 is a perfect
#: bound, large ratios mean the composition bound was loose.
TIGHTNESS_BUCKETS = (1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 25.0, 100.0)


def observe_build_seconds(seconds: float) -> None:
    registry = get_registry()
    if registry.collecting:
        registry.histogram(
            "repro_index_build_seconds",
            buckets=BUILD_BUCKETS,
            help="Wall time spent building one k-mer index profile",
        ).observe(seconds)


def record_store_hit() -> None:
    registry = get_registry()
    if registry.collecting:
        registry.counter(
            "repro_index_store_hits_total",
            help="Index artifacts served from the content-addressed store",
        ).inc()


def record_store_miss() -> None:
    registry = get_registry()
    if registry.collecting:
        registry.counter(
            "repro_index_store_misses_total",
            help="Index-store lookups that required a fresh profile build",
        ).inc()


def record_route(route: str) -> None:
    registry = get_registry()
    if registry.collecting:
        registry.counter(
            "repro_index_routed_total",
            help="Sequences routed by the index tier, by class",
            route=route,
        ).inc()


def observe_tightness(ratio: float) -> None:
    registry = get_registry()
    if registry.collecting:
        registry.histogram(
            "repro_index_bound_tightness",
            buckets=TIGHTNESS_BUCKETS,
            help="Seeded bound / accepted top score (1.0 = tight)",
        ).observe(ratio)
