"""Routing: *skip / defer / full* classification from a k-mer profile.

The classifier turns the matrix-independent :class:`~repro.index.kmer.
KmerProfile` into a per-sequence routing decision under a concrete
scoring model:

* ``full`` — strong repeat signal (dense duplicate k-mers or a
  concentrated diagonal band).  Scanned first, with seeded heap
  bounds.
* ``defer`` — no strong signal, but skipping cannot be justified.
  Scanned after the full class (down-prioritised), also with seeded
  bounds.  With a zero significance threshold every quiet sequence
  lands here — routing never discards work it cannot rule out.
* ``skip`` — the k-mer upper *estimate* of the best attainable
  alignment score falls below the caller's significance threshold
  (``min_score``), so the O(n³) pipeline is not entered at all and the
  sequence reports zero alignments in O(n).

The estimate is::

    smax⁺ × (background_beta × log2(n + 1) + chain_slack × peak_band)

The first term covers the *background*: even a featureless random
sequence reaches a self-alignment score that grows roughly
logarithmically with length under affine gaps (Gumbel-type extremes),
with zero shared k-mers — so a threshold below that background never
skips anything.  The second term covers genuine copy structure: the
peak diagonal band (scaled by ``chain_slack`` to allow for
mismatch-interrupted chains on the same diagonal).  Diverged repeats
concentrate their surviving shared k-mers on the band of the copy
spacing, while random duplicate hits scatter across all bands — which
is why the *peak* band, not the total hit count, is the signal.

The skip class is a calibrated heuristic, not a proof — no o(n²)
statistic can bound a gapped local alignment score tightly (isolated
single-residue matches carry positive score with zero shared k-mers).
``margin`` widens the estimate for safety, skipping only ever fires
when ``min_score > 0``, and the benchmark *measures* byte-equality of
accepted tops rather than asserting it axiomatically.  Callers that
need exactness (the service job path) use seeded bounds only and never
skip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from ..scoring.exchange import ExchangeMatrix
from .kmer import DEFAULT_MAX_OCC, KmerProfile

__all__ = [
    "ROUTE_FULL",
    "ROUTE_DEFER",
    "ROUTE_SKIP",
    "IndexConfig",
    "RouteDecision",
    "classify",
    "promise_score",
]

ROUTE_FULL = "full"
ROUTE_DEFER = "defer"
ROUTE_SKIP = "skip"


@dataclass(frozen=True)
class IndexConfig:
    """Knobs of the k-mer index tier.

    ``k``, ``window``, ``hot_fraction``, ``band_width`` and ``max_occ``
    shape the profile itself (and therefore the store key);
    ``chain_slack``, ``margin`` and ``full_threshold`` only shape the
    routing decision and can change without invalidating stored
    artifacts.
    """

    k: int = 0
    window: int = 32
    hot_fraction: float = 0.3
    band_width: int = 0
    max_occ: int = DEFAULT_MAX_OCC
    chain_slack: float = 3.0
    background_beta: float = 4.0
    margin: float = 1.25
    full_threshold: float = 0.05

    def profile_params(self) -> dict[str, Any]:
        """The profile-shaping parameters (the store-key subset)."""
        return {
            "k": self.k,
            "window": self.window,
            "hot_fraction": self.hot_fraction,
            "band_width": self.band_width,
            "max_occ": self.max_occ,
        }


@dataclass(frozen=True)
class RouteDecision:
    """One sequence's routing class plus the estimate that produced it."""

    route: str
    estimate: float


def _estimate(
    profile: KmerProfile, exchange: ExchangeMatrix, config: IndexConfig
) -> float:
    smax = max(exchange.max_score, 0.0)
    background = config.background_beta * math.log2(profile.length + 1)
    signal = config.chain_slack * profile.peak_band
    return smax * (background + signal)


def promise_score(
    profile: KmerProfile,
    exchange: ExchangeMatrix,
    config: IndexConfig | None = None,
) -> float:
    """Raw (margin-free) score estimate used for shard prioritisation."""
    config = config or IndexConfig()
    if profile.overflowed:
        # An overflowed bucket means a massively repeated word — promise
        # saturates rather than paying the pair expansion.
        return max(exchange.max_score, 0.0) * float(profile.length)
    return _estimate(profile, exchange, config)


def classify(
    profile: KmerProfile,
    exchange: ExchangeMatrix,
    *,
    min_score: float,
    config: IndexConfig | None = None,
) -> RouteDecision:
    """Route one sequence given its profile and the scoring model."""
    config = config or IndexConfig()
    smax = max(exchange.max_score, 0.0)
    if profile.overflowed or profile.max_count > config.max_occ:
        return RouteDecision(ROUTE_FULL, smax * float(profile.length))
    estimate = _estimate(profile, exchange, config)
    if min_score > 0.0 and config.margin * estimate < min_score:
        return RouteDecision(ROUTE_SKIP, estimate)
    if (
        profile.dup_fraction >= config.full_threshold
        or profile.peak_band >= 3
        or profile.hotspots
    ):
        return RouteDecision(ROUTE_FULL, estimate)
    return RouteDecision(ROUTE_DEFER, estimate)
