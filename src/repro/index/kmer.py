"""Bucketed k-mer frequency profiles.

One linear pass over the encoded sequence turns every length-``k``
window into an integer bucket key (base-``|Σ|`` positional encoding),
then accumulates per-bucket occurrence counts.  Three summaries fall
out of the accumulator:

* the **duplicate fraction** — the share of k-mer positions whose
  bucket holds two or more occurrences (a length-normalised
  repetitiveness score);
* **diagonal-band hits** — for each duplicated bucket, the pairwise
  position gaps of its occurrences, histogrammed into bands of
  ``band_width`` residues.  Repeat copies concentrate their shared
  k-mers on the band of the copy spacing; random duplicate hits
  scatter thinly across all bands.  The peak band is therefore the
  discriminating signal for routing (:mod:`repro.index.routing`);
* **hotspot intervals** — maximal windows whose duplicate density
  exceeds ``hot_fraction``, reported in residue coordinates for
  display and for ordering cluster shards most-promising-first.

Windows containing the alphabet wildcard are excluded from the
accumulator: a run of ``N``\\ s is self-similar at every offset but
scores 0 under every wildcard-neutral matrix, so counting it would
manufacture false promise.

This module deliberately never touches :mod:`repro.align` (lint rule
RPR017): profiles must stay near-linear and kernel-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..sequences.sequence import Sequence

__all__ = ["KmerProfile", "build_profile", "default_k"]

# Per-bucket occurrence cap for pair enumeration: buckets fuller than
# this are counted as overflowed (maximal promise) instead of paying
# O(count²) pair expansion on poly-A style runs.
DEFAULT_MAX_OCC = 64


def default_k(alphabet_size: int) -> int:
    """A sensible word size for an alphabet: 8 for nucleotides, 3 for protein.

    The rule of thumb is ``|Σ|^k`` large enough that a random sequence
    of typical length produces few duplicate buckets: 4⁸ = 65 536 for
    DNA/RNA, 24³ = 13 824 for protein.
    """
    return 8 if alphabet_size <= 8 else 3


@dataclass(frozen=True)
class KmerProfile:
    """Matrix-independent k-mer summary of one sequence.

    All fields are plain ints/floats/lists so the profile serialises
    losslessly to JSON for the content-addressed store.
    """

    k: int
    length: int
    alphabet: str
    n_positions: int = 0
    n_valid: int = 0
    distinct: int = 0
    max_count: int = 0
    dup_positions: int = 0
    dup_fraction: float = 0.0
    pair_hits: int = 0
    peak_band: int = 0
    band_width: int = 0
    overflowed: int = 0
    hotspots: tuple[tuple[int, int], ...] = field(default_factory=tuple)

    def to_dict(self) -> dict[str, Any]:
        data = {
            "k": self.k,
            "length": self.length,
            "alphabet": self.alphabet,
            "n_positions": self.n_positions,
            "n_valid": self.n_valid,
            "distinct": self.distinct,
            "max_count": self.max_count,
            "dup_positions": self.dup_positions,
            "dup_fraction": self.dup_fraction,
            "pair_hits": self.pair_hits,
            "peak_band": self.peak_band,
            "band_width": self.band_width,
            "overflowed": self.overflowed,
            "hotspots": [list(h) for h in self.hotspots],
        }
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "KmerProfile":
        return cls(
            k=int(data["k"]),
            length=int(data["length"]),
            alphabet=str(data["alphabet"]),
            n_positions=int(data["n_positions"]),
            n_valid=int(data["n_valid"]),
            distinct=int(data["distinct"]),
            max_count=int(data["max_count"]),
            dup_positions=int(data["dup_positions"]),
            dup_fraction=float(data["dup_fraction"]),
            pair_hits=int(data["pair_hits"]),
            peak_band=int(data["peak_band"]),
            band_width=int(data["band_width"]),
            overflowed=int(data["overflowed"]),
            hotspots=tuple(
                (int(a), int(b)) for a, b in data.get("hotspots", [])
            ),
        )


def _kmer_keys(codes: np.ndarray, k: int, base: int) -> np.ndarray:
    """Base-``base`` positional keys for every length-``k`` window (O(nk))."""
    n = codes.size
    if n < k:
        return np.empty(0, dtype=np.int64)
    c = codes.astype(np.int64)
    keys = np.zeros(n - k + 1, dtype=np.int64)
    for j in range(k):
        keys *= base
        keys += c[j : j + n - k + 1]
    return keys


def _valid_mask(codes: np.ndarray, k: int, wildcard: int | None) -> np.ndarray:
    """True for windows free of the wildcard code."""
    n = codes.size
    if n < k:
        return np.empty(0, dtype=bool)
    if wildcard is None:
        return np.ones(n - k + 1, dtype=bool)
    bad = np.concatenate(([0], np.cumsum(codes == wildcard)))
    return (bad[k:] - bad[: n - k + 1]) == 0


def _hotspot_intervals(
    dup_pos: np.ndarray, k: int, window: int, hot_fraction: float
) -> tuple[tuple[int, int], ...]:
    """Maximal residue intervals whose windowed duplicate density is hot."""
    n_pos = dup_pos.size
    if n_pos == 0:
        return ()
    win = min(window, n_pos)
    csum = np.concatenate(([0], np.cumsum(dup_pos.astype(np.int64))))
    density = (csum[win:] - csum[: n_pos - win + 1]) / win
    hot = density >= hot_fraction
    if not hot.any():
        return ()
    intervals: list[tuple[int, int]] = []
    start: int | None = None
    for i, flag in enumerate(hot):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            intervals.append((start, i - 1 + win + k - 1))
            start = None
    if start is not None:
        intervals.append((start, hot.size - 1 + win + k - 1))
    return tuple(intervals)


def build_profile(
    sequence: Sequence,
    *,
    k: int = 0,
    window: int = 32,
    hot_fraction: float = 0.3,
    band_width: int = 0,
    max_occ: int = DEFAULT_MAX_OCC,
) -> KmerProfile:
    """Build the k-mer profile of ``sequence`` in one accumulator pass.

    ``k=0`` picks :func:`default_k` for the sequence's alphabet;
    ``band_width=0`` defaults to ``max(8, k)``.
    """
    alphabet = sequence.alphabet
    if k <= 0:
        k = default_k(alphabet.size)
    if band_width <= 0:
        band_width = max(8, k)
    codes = sequence.codes
    n = codes.size
    keys = _kmer_keys(codes, k, alphabet.size)
    valid = _valid_mask(codes, k, alphabet.wildcard_code)
    n_positions = keys.size
    vkeys = keys[valid]
    n_valid = int(vkeys.size)
    if n_valid == 0:
        return KmerProfile(
            k=k, length=n, alphabet=alphabet.name,
            n_positions=n_positions, band_width=band_width,
        )
    uniq, inverse, counts = np.unique(
        vkeys, return_inverse=True, return_counts=True
    )
    occ = counts[inverse]
    dup_valid = occ >= 2
    dup_positions = int(dup_valid.sum())
    dup_fraction = dup_positions / n_valid

    # Per-position duplicate flags in original window coordinates, for
    # hotspot intervals (invalid windows are never duplicates).
    dup_pos = np.zeros(n_positions, dtype=bool)
    dup_pos[np.flatnonzero(valid)] = dup_valid

    # Diagonal-band accumulation: for every duplicated bucket of
    # moderate size, histogram the pairwise position gaps.
    positions = np.flatnonzero(valid)
    order = np.argsort(inverse, kind="stable")
    sorted_pos = positions[order]
    boundaries = np.concatenate(([0], np.cumsum(counts)))
    pair_hits = 0
    overflowed = 0
    band_counts: dict[int, int] = {}
    for g in np.flatnonzero(counts >= 2):
        count = int(counts[g])
        if count > max_occ:
            overflowed += 1
            continue
        group = sorted_pos[boundaries[g] : boundaries[g + 1]]
        diffs = (group[None, :] - group[:, None])[
            np.triu_indices(count, k=1)
        ]
        pair_hits += diffs.size
        for band in (diffs // band_width).tolist():
            band_counts[band] = band_counts.get(band, 0) + 1
    # Smooth across one band boundary: a copy spacing sitting on a
    # boundary splits its hits between two adjacent bands.
    peak_band = 0
    for band, hits in band_counts.items():
        peak_band = max(peak_band, hits + band_counts.get(band + 1, 0))

    return KmerProfile(
        k=k,
        length=n,
        alphabet=alphabet.name,
        n_positions=n_positions,
        n_valid=n_valid,
        distinct=int(uniq.size),
        max_count=int(counts.max()),
        dup_positions=dup_positions,
        dup_fraction=float(dup_fraction),
        pair_hits=int(pair_hits),
        peak_band=int(peak_band),
        band_width=band_width,
        overflowed=int(overflowed),
        hotspots=_hotspot_intervals(dup_pos, k, window, hot_fraction),
    )
