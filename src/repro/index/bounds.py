"""Provable per-split upper bounds on first-pass top-alignment scores.

The best-first heap of :mod:`repro.core.tasks` is normally seeded with
``+inf`` for every split, forcing one full alignment per split before
the first acceptance.  This module computes, in O(n·|Σ|) total, a
finite bound ``B(r)`` for every split ``r`` that provably dominates the
true first-pass score, so splits whose bound never reaches the top of
the heap are never aligned at all — and the accepted tops stay
bit-identical (a task can only be accepted after a fresh alignment,
and fresh scores are what acceptance compares).

Two bounds are combined (ALAE-style: cheap precomputed maxima that the
exact search can trust):

**Composition bound.**  Let ``w(a) = max_b max(s(a, b), 0)`` be the
best non-negative score residue ``a`` can earn in any matched pair.
Every matched pair ``(a, b)`` of a local alignment scores at most
``min(w(a), w(b))``, each residue participates in at most one pair,
and gaps only subtract, so::

    score(r)  <=  min( sum_{i<r} w(S_i),  sum_{i>=r} w(S_i) )

computed for all ``r`` at once via one prefix sum over ``w[codes]``.

**Identity bound** (only when every off-diagonal entry of the matrix
is ``<= 0``, e.g. the paper's +2/−1 nucleotide matrix — *not*
BLOSUM62): only same-letter pairs can contribute positively, letter
``a`` can pair at most ``min(count_a(prefix), count_a(suffix))``
times, each occurrence scoring at most ``max(s(a, a), 0)``::

    score(r)  <=  sum_a min(c_a(prefix), c_a(suffix)) * max(s(a,a), 0)

The final bound is the minimum of the applicable bounds, clamped to 0
(scores of accepted alignments are strictly positive, and the task
guard requires non-negative seeds).

No :mod:`repro.align` import happens here (lint rule RPR017): bounds
are pure counting, never a kernel call.
"""

from __future__ import annotations

import numpy as np

from ..scoring.exchange import ExchangeMatrix
from ..sequences.sequence import Sequence

__all__ = ["seed_score_bounds"]


def seed_score_bounds(
    sequence: Sequence, exchange: ExchangeMatrix
) -> np.ndarray:
    """Upper bounds ``B(r) >= first-pass score`` for splits ``r=1..m-1``.

    Returns a float64 array of length ``len(sequence) - 1`` whose entry
    ``i`` bounds split ``r = i + 1``.
    """
    codes = sequence.codes
    m = codes.size
    if m < 2:
        return np.zeros(0, dtype=np.float64)
    scores = exchange.scores
    positive = np.maximum(scores, 0.0)
    # Composition bound via one prefix sum of per-residue weights.
    weights = positive.max(axis=1)
    wseq = weights[codes]
    prefix = np.cumsum(wseq)
    total = prefix[-1]
    left = prefix[:-1]
    bounds = np.minimum(left, total - left)
    # Identity bound, valid only for identity-dominant matrices.
    offdiag = scores - np.diag(np.diag(scores))
    if float(offdiag.max()) <= 0.0:
        diag_pos = np.maximum(np.diag(scores), 0.0)
        onehot = np.zeros((m, scores.shape[0]), dtype=np.float64)
        onehot[np.arange(m), codes] = 1.0
        cum = np.cumsum(onehot, axis=0)
        prefix_counts = cum[:-1]
        suffix_counts = cum[-1] - prefix_counts
        identity = np.minimum(prefix_counts, suffix_counts) @ diag_pos
        bounds = np.minimum(bounds, identity)
    return np.maximum(bounds, 0.0)
