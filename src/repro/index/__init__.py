"""``repro.index`` — the k-mer candidate-seeding tier.

Every sequence in a database scan used to pay the full O(n³)
top-alignment cost even when it carries no repeat signal.  This package
adds a linear-time screening pass in front of the exact pipeline:

* :mod:`~repro.index.kmer` — a bucketed k-mer frequency profile
  (duplicate fraction, diagonal-band hit concentration, hotspot
  intervals) computed in one pass over the encoded sequence;
* :mod:`~repro.index.bounds` — provable per-split upper bounds on the
  first-pass top-alignment score, used to seed the best-first heap so
  accepted tops stay bit-identical while low-promise splits are never
  aligned;
* :mod:`~repro.index.routing` — the *skip / defer / full* classifier
  driven by the profile;
* :mod:`~repro.index.store` — content-addressed persistence of index
  artifacts (sequence digest + index params), so warm reruns of the
  same database rebuild zero indices.

By design this package never imports the alignment kernels
(``repro.align``) — enforced by lint rule RPR017 — so index
construction stays O(n log n) and cannot accidentally grow an O(n²)
dependency.
"""

from .bounds import seed_score_bounds
from .kmer import KmerProfile, build_profile, default_k
from .routing import (
    ROUTE_DEFER,
    ROUTE_FULL,
    ROUTE_SKIP,
    IndexConfig,
    RouteDecision,
    classify,
    promise_score,
)
from .store import INDEX_VERSION, IndexStore, index_digest

__all__ = [
    "INDEX_VERSION",
    "IndexConfig",
    "IndexStore",
    "KmerProfile",
    "ROUTE_DEFER",
    "ROUTE_FULL",
    "ROUTE_SKIP",
    "RouteDecision",
    "build_profile",
    "classify",
    "default_k",
    "index_digest",
    "promise_score",
    "seed_score_bounds",
]
