"""Content-addressed persistence of index artifacts.

An index artifact is the JSON-serialised :class:`~repro.index.kmer.
KmerProfile` of one sequence under one set of profile parameters.  It
is stored in the same sharded content-addressed layout the service
result cache uses (:class:`repro.service.cache.ResultCache`), keyed by

    sha256( kind, INDEX_VERSION, sequence digest, alphabet, params )

so the *same database scanned twice is index-warm*: the second run
loads every profile from disk and rebuilds zero indices.  The key
deliberately excludes the scoring matrix and the routing knobs
(``chain_slack``/``margin``/``full_threshold``) — profiles are
matrix-independent counts, so one artifact serves every scoring model
and any routing calibration.

``INDEX_VERSION`` bumps whenever the profile computation changes
meaning; old artifacts then miss naturally instead of poisoning new
runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any

from ..sequences.sequence import Sequence
from ..service.cache import ResultCache
from .kmer import KmerProfile, build_profile
from .metrics import observe_build_seconds, record_store_hit, record_store_miss
from .routing import IndexConfig

__all__ = ["INDEX_VERSION", "IndexStore", "index_digest", "sequence_digest"]

INDEX_VERSION = 1


def sequence_digest(sequence: Sequence) -> str:
    """SHA-256 of the encoded residues (alphabet-qualified)."""
    h = hashlib.sha256()
    h.update(sequence.alphabet.name.encode("utf-8"))
    h.update(b"\x00")
    h.update(sequence.codes.tobytes())
    return h.hexdigest()


def index_digest(sequence: Sequence, config: IndexConfig) -> str:
    """The content address of ``sequence``'s profile under ``config``."""
    key = {
        "kind": "kmer-index",
        "version": INDEX_VERSION,
        "sequence": sequence_digest(sequence),
        "alphabet": sequence.alphabet.name,
        "params": config.profile_params(),
    }
    canonical = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class IndexStore:
    """Sharded on-disk store of index artifacts.

    Rooted at its own directory (conventionally ``<data_dir>/index``)
    so index artifacts and job results stay separately countable.
    """

    def __init__(self, root: str | os.PathLike, *, memory_items: int = 64) -> None:
        self.cache = ResultCache(root, memory_items=memory_items)
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.build_seconds = 0.0

    def load(self, sequence: Sequence, config: IndexConfig) -> KmerProfile | None:
        """The stored profile for ``sequence``/``config``, or ``None``."""
        payload = self.cache.get(index_digest(sequence, config))
        if payload is None or payload.get("version") != INDEX_VERSION:
            self.misses += 1
            record_store_miss()
            return None
        try:
            profile = KmerProfile.from_dict(payload["profile"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            record_store_miss()
            return None
        self.hits += 1
        record_store_hit()
        return profile

    def store(
        self, sequence: Sequence, config: IndexConfig, profile: KmerProfile
    ) -> None:
        """Persist ``profile`` under its content address (atomic)."""
        payload: dict[str, Any] = {
            "version": INDEX_VERSION,
            "params": config.profile_params(),
            "profile": profile.to_dict(),
        }
        self.cache.put(index_digest(sequence, config), payload)

    def build_or_load(
        self, sequence: Sequence, config: IndexConfig
    ) -> tuple[KmerProfile, bool]:
        """Load the profile from the store, or build and persist it.

        Returns ``(profile, built)`` where ``built`` tells whether a
        fresh build happened (warm reruns return ``built=False`` for
        every record).
        """
        profile = self.load(sequence, config)
        if profile is not None:
            return profile, False
        start = time.perf_counter()
        profile = build_profile(sequence, **config.profile_params())
        elapsed = time.perf_counter() - start
        self.builds += 1
        self.build_seconds += elapsed
        observe_build_seconds(elapsed)
        self.store(sequence, config, profile)
        return profile, True

    def entries(self) -> int:
        """Number of artifacts on disk."""
        return self.cache.entries()

    def stats(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "build_seconds": self.build_seconds,
            "entries": self.entries(),
        }
