"""Full alignment-matrix computation.

Engines normally keep only the previous row (the paper's memory
argument); the full matrix is materialised only when a traceback is
about to run — i.e. once per *accepted* top alignment, which the paper
notes is the sequential tail of each iteration.
"""

from __future__ import annotations

import numpy as np

from .base import AlignmentProblem
from .vector import iter_rows

__all__ = ["full_matrix", "matrix_for_texts"]


def full_matrix(problem: AlignmentProblem, dtype=np.float64) -> np.ndarray:
    """The complete ``(rows+1) x (cols+1)`` score matrix of Equation 1.

    Row 0 and column 0 are the zero boundary, so ``matrix[y, x]``
    matches the paper's ``M[y][x]`` indices directly (Figure 2).
    """
    rows, cols = problem.rows, problem.cols
    matrix = np.zeros((rows + 1, cols + 1), dtype=dtype)
    if rows == 0 or cols == 0:
        return matrix
    for y, row in iter_rows(problem):
        matrix[y] = row
    return matrix


def matrix_for_texts(
    seq1: str,
    seq2: str,
    exchange,
    gaps,
) -> np.ndarray:
    """Convenience wrapper used by docs/tests: matrix from raw strings."""
    problem = AlignmentProblem.from_sequences(seq1, seq2, exchange, gaps)
    return full_matrix(problem)
