"""Standard Smith–Waterman–Gotoh local alignment (comparator substrate).

The paper's Equation 1 is the Heringa/Argos variant of local alignment:
gap jumps originate from row ``i-1`` / column ``j-1``, so *every* path
cell is a matched pair — which is what lets the override triangle mark
exactly the matched residues.  The textbook formulation (Smith &
Waterman 1981 with Gotoh's affine-gap states) instead lets gaps extend
from the current row/column::

    H[i][j] = max(0, H[i-1][j-1] + E(a_i, b_j), F[i][j], G[i][j])
    F[i][j] = max(H[i][j-1] - open - ext, F[i][j-1] - ext)   # gap in A
    G[i][j] = max(H[i-1][j] - open - ext, G[i-1][j] - ext)   # gap in B

This module implements that classic recurrence (row-vectorised like
:mod:`repro.align.vector`; ``F`` is again a prefix-max scan) so that the
two formulations can be compared — tests establish the semantic
relationships (identical optima for gapless alignments; bounded
divergence otherwise) and benchmarks can use it as an external
reference point.  It is **not** used by the top-alignment driver: the
override-triangle machinery is specific to Equation 1.
"""

from __future__ import annotations

import numpy as np

from .base import AlignmentEngine, AlignmentProblem, register_engine

__all__ = ["GotohEngine", "gotoh_matrix"]


def gotoh_matrix(problem: AlignmentProblem) -> np.ndarray:
    """Full ``H`` matrix of the Smith–Waterman–Gotoh recurrence.

    The override hook is honoured the same way as in Equation 1 (cells
    forced to zero after computation) so the engines stay comparable.
    """
    rows, cols = problem.rows, problem.cols
    H = np.zeros((rows + 1, cols + 1), dtype=np.float64)
    if rows == 0 or cols == 0:
        return H
    open_, ext = problem.gaps.open_, problem.gaps.extend
    first = open_ + ext  # cost of opening a gap of length 1
    sub = problem.exchange.scores[:, problem.seq2.astype(np.int64)]
    override = problem.override

    G = np.full(cols, -np.inf, dtype=np.float64)  # vertical gap state, per column
    for y in range(1, rows + 1):
        prev = H[y - 1]
        erow = sub[problem.seq1[y - 1]]
        # Vertical gaps: G[j] = max(H[y-1][j] - first, G[j] - ext).
        np.maximum(prev[1:] - first, G - ext, out=G)
        diag = prev[:cols] + erow
        best = np.maximum(diag, G)
        # Horizontal gaps depend on the *current* row: F[j] =
        # max_k<=j-1 (H[y][k] - open - ext*(j-k)) — a left-to-right scan
        # that interacts with the max(0, .) clamp, so do it scalar; the
        # scan state is one register, still O(cols).
        row = H[y]
        f = -np.inf
        mask = override.row_mask(y) if override is not None else None
        # repro-lint: allow[RPR001] the horizontal-gap prefix scan interacts
        # with the max(0,.) clamp; inherently sequential, one register of state
        for x in range(1, cols + 1):
            h = best[x - 1]
            if f > h:
                h = f
            if h < 0.0:
                h = 0.0
            if mask is not None and mask[x - 1]:
                h = 0.0
            row[x] = h
            seed = h - first
            f = f - ext
            if seed > f:
                f = seed
    return H


class GotohEngine(AlignmentEngine):
    """Bottom row / best score under the textbook recurrence."""

    name = "gotoh"

    def last_row(self, problem: AlignmentProblem) -> np.ndarray:
        return gotoh_matrix(problem)[-1].astype(np.float64)

    def score(self, problem: AlignmentProblem) -> float:
        """Best score anywhere (the textbook optimum, not bottom-row)."""
        return float(gotoh_matrix(problem).max())


register_engine("gotoh", GotohEngine)
