"""Cache-aware vertical striping (§4.1, last part).

The paper computes each matrix in vertical stripes sized to a third of
the L1 cache: a section of a row is computed, then the section of the
row *below* it, so the working set (current row section, ``MaxY``
section, exchange rows) stays cache-resident.  This engine reproduces
that traversal order on top of the vectorised recurrence.

Carrying the recurrence across a stripe boundary needs, per row ``y``:

* ``M[y][x0-1]`` — the diagonal feed of the stripe's first column, and
* the running prefix maximum of the transformed horizontal-gap series
  ``B[k] = M[y][k-1] - open + ext*k`` over all columns left of the
  stripe (the ``MaxX`` state, which composes across stripes because it
  is a plain running maximum in the transformed coordinates).

Both are O(rows) vectors saved while sweeping one stripe and consumed
by the next, so memory stays linear exactly as in the single-pass
engine.

Whether striping *helps* in numpy depends on where the per-row working
set falls relative to the cache hierarchy — the striping benchmark
(`benchmarks/bench_striping.py`) measures this and EXPERIMENTS.md
compares the shape against the paper's 4–6.5x claim.
"""

from __future__ import annotations

import numpy as np

from .base import AlignmentEngine, AlignmentProblem, register_engine

__all__ = ["StripedEngine"]


class StripedEngine(AlignmentEngine):
    """Vector engine with the paper's stripe-wise traversal order.

    Parameters
    ----------
    stripe:
        Stripe width in matrix columns.  The paper sizes stripes to a
        third of the 16 KB L1 data cache of the Pentium III — 2730
        two-byte entries; the default uses the same cell count.
    """

    name = "striped"

    def __init__(self, stripe: int = 2730) -> None:
        if stripe < 1:
            raise ValueError("stripe width must be positive")
        self.stripe = stripe

    def __repr__(self) -> str:
        return f"StripedEngine(stripe={self.stripe})"

    def last_row(self, problem: AlignmentProblem) -> np.ndarray:
        rows, cols = problem.rows, problem.cols
        out = np.zeros(cols + 1, dtype=np.float64)
        if rows == 0 or cols == 0:
            return out

        open_, ext = problem.gaps.open_, problem.gaps.extend
        override = problem.override
        sub = problem.substitution_rows()
        seq1 = problem.seq1
        gate = problem.prune
        # Best cell value seen anywhere in the filled stripes: every
        # path into the unfilled columns crosses this region, so it
        # anchors the column-suffix prune bound.
        filled_max = 0.0

        # Cross-stripe carry state, indexed by row y = 0..rows:
        # left_diag[y]  = M[y][x0-1] of the stripe being entered;
        # carry_pref[y] = max_{k <= x0-1} B[y][k] (transformed MaxX).
        left_diag = np.zeros(rows + 1, dtype=np.float64)
        carry_pref = np.full(rows + 1, -np.inf, dtype=np.float64)

        for x0 in range(1, cols + 1, self.stripe):
            x1 = min(x0 + self.stripe - 1, cols)
            width = x1 - x0 + 1
            ks = np.arange(x0, x1 + 1, dtype=np.float64)  # global column ids

            prev = np.zeros(width + 1, dtype=np.float64)  # [0] = M[y-1][x0-1]
            curr = np.empty(width + 1, dtype=np.float64)
            max_y = np.full(width, -np.inf, dtype=np.float64)
            new_left = np.zeros(rows + 1, dtype=np.float64)
            new_pref = np.full(rows + 1, -np.inf, dtype=np.float64)

            # repro-lint: allow[RPR001] per-ROW loop, not per-cell: the body
            # is vectorised across the stripe's columns (SWAT-style striping)
            for y in range(1, rows + 1):
                prev[0] = left_diag[y - 1]
                diag = prev[:width]  # diag[j] = M[y-1][x0-1+j]
                erow = sub[seq1[y - 1], x0 - 1 : x1]

                # B[k] = diag - open + ext*k over this stripe's columns,
                # prefix-maxed together with the carry from the left
                # (carry_pref[y] is the prefix over columns < x0 of the
                # B series consumed while computing row y).
                b = diag - open_ + ext * ks
                np.maximum.accumulate(b, out=b)
                np.maximum(b, carry_pref[y], out=b)
                # MaxX used at column k is the prefix up to k-1.
                inner = np.maximum(max_y, diag)
                inner[0] = max(inner[0], carry_pref[y] - ext * x0)
                if width > 1:
                    np.maximum(inner[1:], b[:-1] - ext * ks[1:], out=inner[1:])

                np.add(inner, erow, out=curr[1:])
                np.maximum(curr[1:], 0.0, out=curr[1:])
                if override is not None:
                    mask = override.row_mask(y)
                    if mask is not None:
                        curr[1:][mask[x0 - 1 : x1]] = 0.0

                np.maximum(max_y, diag - open_, out=max_y)
                max_y -= ext

                new_left[y] = curr[width]
                new_pref[y] = b[-1]
                if gate is not None:
                    stripe_best = float(curr[1:].max())
                    if stripe_best > filled_max:
                        filled_max = stripe_best
                if y == rows:
                    out[x0 : x1 + 1] = curr[1:]
                prev, curr = curr, prev

            left_diag = new_left
            carry_pref = new_pref
            if gate is not None and gate.check_columns(x1, filled_max):
                # The unfilled stripes provably cannot reach the floor;
                # the driver records gate.bound instead of this row.
                return np.zeros(cols + 1, dtype=np.float64)

        return out


register_engine("striped", StripedEngine)
