"""Batched lane engine — the paper's coarse-grained SIMD technique (§4.1).

Instead of vectorising *inside* one matrix (hard, because of the
``MaxX`` dependency), the paper computes 4 (SSE) or 8 (SSE2)
*neighbouring* matrices in lockstep, with corresponding entries
interleaved in memory (Figure 7).  This engine reproduces that design
with numpy: a group of G alignment problems is evaluated together, the
working rows shaped ``(columns, G)`` so that the G lane values of one
cell are adjacent in memory — exactly the interleaving of Figure 7.

Each lane processes its own matrix in its own local coordinates; lanes
shorter than the group maximum simply ignore the padded garbage at
their right/bottom borders, which never contaminates valid cells
because data dependencies flow left-to-right and top-to-bottom (the
paper's "corrections for the left and bottom borders").

Two per-call overheads are amortised away on the batched hot path:

* **Query profiles** — problems that carry a
  :class:`~repro.align.profile.ProfileView` contribute a zero-copy
  slice of a precomputed substitution gather instead of a fresh
  ``E[:, seq2]`` fancy index per lane per call;
* **Scratch reuse** — the interleaved working rows, per-lane
  substitution block and decay offsets are kept in a per-thread cache
  keyed by group shape, so back-to-back batches of similar shape
  (exactly what the speculative batched driver issues) skip
  reallocation entirely.

Three value modes mirror the instruction tiers:

* ``float64`` — exact, used for correctness tests;
* ``int32``   — exact integer mode ("wide" registers);
* ``int16``   — scores saturate at the signed-short maximum, the
  paper's SSE/SSE2 value range ("limiting" analogue of §4.1).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from ..obs import get_registry
from .base import AlignmentEngine, AlignmentProblem, register_engine

__all__ = ["LanesEngine", "INT16_MAX"]

#: Lane-occupancy histogram boundaries: group widths around the paper's
#: SSE (4) and SSE2 (8) configurations.
_OCCUPANCY_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)

#: Saturation ceiling of the int16 mode (signed short, as in SSE ``pmaxsw``).
INT16_MAX = 32767

_NEG = {
    "float64": -np.inf,
    "int32": -(2**30),
    "int16": -(2**30),  # internal arithmetic is int64; only values saturate
}


class _LaneScratch:
    """Reusable working buffers for one ``(group, n_symbols, dtype)`` family.

    Capacities only grow; each :meth:`ensure` call returns views sized
    to the current batch.  Values left behind by a previous batch are
    confined to each lane's padded right/bottom border (the same
    argument that lets short lanes ignore padding), except for the
    buffers reinitialised below.
    """

    __slots__ = (
        "group", "nsym", "work",
        "rows_cap", "cols_cap",
        "subs", "codes1", "prev", "curr", "max_y", "inner", "b", "ext_ramp",
    )

    def __init__(self, group: int, nsym: int, work: np.dtype) -> None:
        self.group = group
        self.nsym = nsym
        self.work = work
        self.rows_cap = 0
        self.cols_cap = 0

    def ensure(self, max_rows: int, max_cols: int) -> None:
        """Grow the buffers to cover a ``max_rows x max_cols`` batch."""
        if max_cols > self.cols_cap:
            cols = max(max_cols, 2 * self.cols_cap)
            self.cols_cap = cols
            group, work = self.group, self.work
            # subs starts (and stays) finite: zero-initialised, and every
            # later write stores real exchange scores — so stale values in
            # a lane's padded border can never be inf/NaN.
            self.subs = np.zeros((group, self.nsym, cols), dtype=work)
            self.prev = np.empty((cols + 1, group), dtype=work)
            self.curr = np.empty((cols + 1, group), dtype=work)
            self.max_y = np.empty((cols, group), dtype=work)
            self.inner = np.empty((cols, group), dtype=work)
            self.b = np.empty((cols, group), dtype=work)
            self.ext_ramp = np.arange(1, cols + 2, dtype=work)[:, None]
        if max_rows > self.rows_cap:
            rows = max(max_rows, 2 * self.rows_cap)
            self.rows_cap = rows
            # Zero-initialised for the same reason: every entry is always
            # a valid residue code, so padded rows gather safely.
            self.codes1 = np.zeros((rows, self.group), dtype=np.int64)


class LanesEngine(AlignmentEngine):
    """Lockstep evaluation of a group of alignment problems.

    Parameters
    ----------
    lanes:
        Preferred group width (4 for "SSE", 8 for "SSE2").  Groups of
        any size are accepted; this is the width schedulers should aim
        for and the width :meth:`last_row` pads single problems to.
    dtype:
        ``"float64"`` (default), ``"int32"`` or ``"int16"`` (saturating).
    """

    name = "lanes"

    def __init__(self, lanes: int = 4, dtype: str = "float64") -> None:
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        if dtype not in _NEG:
            raise ValueError(f"dtype must be one of {sorted(_NEG)}")
        self.lanes = lanes
        self.dtype = dtype
        # Scratch buffers are mutable shared state; keep them per-thread
        # so the threaded runner's workers never race on them.
        self._tls = threading.local()
        # Cached (registry, hits, misses, occupancy) instrument handles;
        # revalidated against the live registry each batch so tests that
        # swap registries see fresh instruments.
        self._obs_handles: tuple | None = None

    def _metrics(self) -> tuple | None:
        """Instrument handles when collection is on, else None."""
        registry = get_registry()
        if not registry.collecting:
            return None
        handles = self._obs_handles
        if handles is None or handles[0] is not registry:
            handles = (
                registry,
                registry.counter(
                    "repro_scratch_hits_total",
                    help="Lane-engine batches served from a cached scratch block",
                ),
                registry.counter(
                    "repro_scratch_misses_total",
                    help="Lane-engine batches that allocated a fresh scratch block",
                ),
                registry.histogram(
                    "repro_lane_occupancy",
                    buckets=_OCCUPANCY_BUCKETS,
                    help="Problems per lockstep lane batch",
                ),
            )
            self._obs_handles = handles
        return handles

    def __repr__(self) -> str:
        return f"LanesEngine(lanes={self.lanes}, dtype={self.dtype!r})"

    def describe(self) -> str:
        return f"{self.name}[{self.dtype}]"

    # -- single problem (interface compliance) ---------------------------

    def last_row(self, problem: AlignmentProblem) -> np.ndarray:
        return self.last_rows_batch([problem])[0]

    # -- scratch cache -----------------------------------------------------

    #: Per-thread bound on live scratch shapes.  A long-lived process
    #: (the service worker pool) cycles through many batch shapes; an
    #: unbounded cache would pin one scratch block per shape forever.
    _SCRATCH_CACHE_MAX = 8

    def _scratch_for(self, group: int, nsym: int, work: np.dtype) -> _LaneScratch:
        cache: OrderedDict | None = getattr(self._tls, "cache", None)
        if cache is None:
            cache = OrderedDict()
            self._tls.cache = cache
        key = (group, nsym, np.dtype(work).str)
        scratch = cache.get(key)
        metrics = self._metrics()
        if scratch is None:
            if metrics is not None:
                metrics[2].inc()
            scratch = _LaneScratch(group, nsym, work)
            cache[key] = scratch
            while len(cache) > self._SCRATCH_CACHE_MAX:
                cache.popitem(last=False)
        else:
            if metrics is not None:
                metrics[1].inc()
            cache.move_to_end(key)
        return scratch

    # -- the lockstep batch ----------------------------------------------

    def last_rows_batch(self, problems: list[AlignmentProblem]) -> list[np.ndarray]:
        """Bottom rows of all problems, computed in lockstep.

        All problems must share the same gap penalties and exchange
        matrix (true for the top-alignment workload, where neighbouring
        matrices split the same sequence).
        """
        if not problems:
            return []
        metrics = self._metrics()
        if metrics is not None:
            metrics[3].observe(len(problems))
        gaps = problems[0].gaps
        exchange = problems[0].exchange
        for p in problems[1:]:
            if p.gaps != gaps:
                raise ValueError("lane group must share gap penalties")
            if p.exchange is not exchange and p.exchange.name != exchange.name:
                raise ValueError("lane group must share the exchange matrix")

        group = len(problems)
        rows_l = np.array([p.rows for p in problems])
        cols_l = np.array([p.cols for p in problems])
        max_rows = int(rows_l.max())
        max_cols = int(cols_l.max())
        results: list[np.ndarray | None] = [None] * group
        for lane, p in enumerate(problems):
            if p.rows == 0 or p.cols == 0:
                results[lane] = np.zeros(p.cols + 1, dtype=np.float64)
        if max_rows == 0 or max_cols == 0:
            return [r if r is not None else np.zeros(1, dtype=np.float64) for r in results]

        is_float = self.dtype == "float64"
        work = np.float64 if is_float else np.int64
        neg = _NEG[self.dtype]
        if is_float:
            open_, ext = gaps.open_, gaps.extend
        else:
            open_, ext = gaps.as_integers()

        nsym = exchange.size
        scratch = self._scratch_for(group, nsym, work)
        scratch.ensure(max_rows, max_cols)

        # Per-lane substitution blocks for the horizontal sequences:
        # subs[lane, code, x] = E[code, seq2_lane[x]].  Problems carrying
        # a query profile contribute a precomputed slice (a memcpy);
        # profile-less problems fall back to the per-call fancy gather.
        # One fancy-index per row then fetches all lanes' rows at once.
        subs = scratch.subs[:, :, :max_cols]
        codes1 = scratch.codes1[:max_rows]
        for lane, p in enumerate(problems):
            if p.profile is not None:
                lane_sub = p.profile.scores if is_float else p.profile.integer_scores()
            else:
                lane_sub = (
                    p.substitution_rows() if is_float else p.substitution_rows_int()
                )
            subs[lane, :, : p.cols] = lane_sub
            codes1[: p.rows, lane] = p.seq1
        lane_idx = np.arange(group)

        # Per-lane prune gates (repro.align.pruning): lanes whose score
        # upper bound sinks below the floor stop being harvested, and
        # the batch ends early once every lane is harvested or pruned.
        gates = [p.prune for p in problems]
        has_gates = any(g is not None for g in gates)
        pending = {lane for lane in range(group) if results[lane] is None}
        if has_gates:
            # Padded columns carry stale scratch garbage (harmless for
            # results, see class docstring) — mask them out so per-lane
            # row maxima, and therefore bounds, stay exact.
            col_valid = np.zeros((max_cols, group), dtype=bool)
            for lane, p in enumerate(problems):
                col_valid[: p.cols, lane] = True

        # Interleaved working rows, Figure 7 style: shape (cols, lanes),
        # C-contiguous, so one cell's lane values are adjacent.
        prev = scratch.prev[: max_cols + 1]
        curr = scratch.curr[: max_cols + 1]
        prev.fill(0)  # boundary row/column of Equation 1
        curr.fill(0)
        max_y = scratch.max_y[:max_cols]
        max_y.fill(neg)
        k_up = ext * scratch.ext_ramp[:max_cols]  # ext * k for k = 1..cols
        x_dn = ext * scratch.ext_ramp[1:max_cols]  # ext * x for x = 2..cols
        inner = scratch.inner[:max_cols]
        b = scratch.b[:max_cols]

        for y in range(1, max_rows + 1):
            diag = prev[:max_cols]
            erow = subs[lane_idx, codes1[y - 1]].T  # (cols, lanes)

            np.add(diag, k_up, out=b)
            b -= open_
            np.maximum.accumulate(b, axis=0, out=b)
            np.maximum(max_y, diag, out=inner)
            if max_cols > 1:
                np.maximum(inner[1:], b[:-1] - x_dn, out=inner[1:])

            np.add(inner, erow, out=curr[1:])
            np.maximum(curr, 0, out=curr)
            if self.dtype == "int16":
                np.minimum(curr, INT16_MAX, out=curr)
            for lane, p in enumerate(problems):
                if p.override is not None and y <= p.rows:
                    mask = p.override.row_mask(y)
                    if mask is not None:
                        curr[1 : p.cols + 1, lane][mask] = 0

            np.maximum(max_y, diag - open_, out=max_y)
            max_y -= ext

            # Harvest lanes whose matrix ends at this row.
            for lane in np.flatnonzero(rows_l == y):
                p = problems[lane]
                out = np.zeros(p.cols + 1, dtype=np.float64)
                out[1:] = curr[1 : p.cols + 1, lane]
                results[lane] = out
                pending.discard(lane)

            if has_gates and pending:
                lane_best = np.where(col_valid, curr[1:], 0).max(axis=0)
                for lane in tuple(pending):
                    gate = gates[lane]
                    if (
                        gate is not None
                        and y < problems[lane].rows
                        and gate.check_row(y, float(lane_best[lane]))
                    ):
                        # Lane provably below the floor: never harvested;
                        # the driver records gate.bound for its task.
                        results[lane] = np.zeros(
                            problems[lane].cols + 1, dtype=np.float64
                        )
                        pending.discard(lane)
                if not pending:
                    break  # all lanes harvested or pruned — skip the tail

            prev, curr = curr, prev

        return [r for r in results]  # every lane harvested or pruned


def _sse() -> LanesEngine:
    return LanesEngine(lanes=4, dtype="int16")


def _sse2() -> LanesEngine:
    return LanesEngine(lanes=8, dtype="int16")


register_engine("lanes", LanesEngine)
register_engine("lanes-sse", _sse)
register_engine("lanes-sse2", _sse2)
