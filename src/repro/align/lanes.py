"""Batched lane engine — the paper's coarse-grained SIMD technique (§4.1).

Instead of vectorising *inside* one matrix (hard, because of the
``MaxX`` dependency), the paper computes 4 (SSE) or 8 (SSE2)
*neighbouring* matrices in lockstep, with corresponding entries
interleaved in memory (Figure 7).  This engine reproduces that design
with numpy: a group of G alignment problems is evaluated together, the
working rows shaped ``(columns, G)`` so that the G lane values of one
cell are adjacent in memory — exactly the interleaving of Figure 7.

Each lane processes its own matrix in its own local coordinates; lanes
shorter than the group maximum simply ignore the padded garbage at
their right/bottom borders, which never contaminates valid cells
because data dependencies flow left-to-right and top-to-bottom (the
paper's "corrections for the left and bottom borders").

Three value modes mirror the instruction tiers:

* ``float64`` — exact, used for correctness tests;
* ``int32``   — exact integer mode ("wide" registers);
* ``int16``   — scores saturate at the signed-short maximum, the
  paper's SSE/SSE2 value range ("limiting" analogue of §4.1).
"""

from __future__ import annotations

import numpy as np

from .base import AlignmentEngine, AlignmentProblem, register_engine

__all__ = ["LanesEngine", "INT16_MAX"]

#: Saturation ceiling of the int16 mode (signed short, as in SSE ``pmaxsw``).
INT16_MAX = 32767

_NEG = {
    "float64": -np.inf,
    "int32": -(2**30),
    "int16": -(2**30),  # internal arithmetic is int32; only values saturate
}


class LanesEngine(AlignmentEngine):
    """Lockstep evaluation of a group of alignment problems.

    Parameters
    ----------
    lanes:
        Preferred group width (4 for "SSE", 8 for "SSE2").  Groups of
        any size are accepted; this is the width schedulers should aim
        for and the width :meth:`last_row` pads single problems to.
    dtype:
        ``"float64"`` (default), ``"int32"`` or ``"int16"`` (saturating).
    """

    name = "lanes"

    def __init__(self, lanes: int = 4, dtype: str = "float64") -> None:
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        if dtype not in _NEG:
            raise ValueError(f"dtype must be one of {sorted(_NEG)}")
        self.lanes = lanes
        self.dtype = dtype

    def __repr__(self) -> str:
        return f"LanesEngine(lanes={self.lanes}, dtype={self.dtype!r})"

    # -- single problem (interface compliance) ---------------------------

    def last_row(self, problem: AlignmentProblem) -> np.ndarray:
        return self.last_rows_batch([problem])[0]

    # -- the lockstep batch ----------------------------------------------

    def last_rows_batch(self, problems: list[AlignmentProblem]) -> list[np.ndarray]:
        """Bottom rows of all problems, computed in lockstep.

        All problems must share the same gap penalties and exchange
        matrix (true for the top-alignment workload, where neighbouring
        matrices split the same sequence).
        """
        if not problems:
            return []
        gaps = problems[0].gaps
        exchange = problems[0].exchange
        for p in problems[1:]:
            if p.gaps != gaps:
                raise ValueError("lane group must share gap penalties")
            if p.exchange is not exchange and p.exchange.name != exchange.name:
                raise ValueError("lane group must share the exchange matrix")

        group = len(problems)
        rows_l = np.array([p.rows for p in problems])
        cols_l = np.array([p.cols for p in problems])
        max_rows = int(rows_l.max())
        max_cols = int(cols_l.max())
        results: list[np.ndarray | None] = [None] * group
        for lane, p in enumerate(problems):
            if p.rows == 0 or p.cols == 0:
                results[lane] = np.zeros(p.cols + 1, dtype=np.float64)
        if max_rows == 0 or max_cols == 0:
            return [r if r is not None else np.zeros(1, dtype=np.float64) for r in results]

        is_float = self.dtype == "float64"
        work = np.float64 if is_float else np.int64
        neg = _NEG[self.dtype]
        if is_float:
            open_, ext = gaps.open_, gaps.extend
            escores = exchange.scores
        else:
            open_, ext = gaps.as_integers()
            escores = exchange.as_integers().astype(np.int64)

        # Per-lane exchange gathers for the horizontal sequences:
        # subs[lane, code, x] = E[code, seq2_lane[x]].  One fancy-index
        # per row then fetches all lanes' exchange rows at once.
        nsym = exchange.size
        subs = np.zeros((group, nsym, max_cols), dtype=work)
        codes1 = np.zeros((max_rows, group), dtype=np.int64)
        for lane, p in enumerate(problems):
            subs[lane, :, : p.cols] = escores[:, p.seq2.astype(np.int64)]
            codes1[: p.rows, lane] = p.seq1
        lane_idx = np.arange(group)

        # Interleaved working rows, Figure 7 style: shape (cols, lanes),
        # C-contiguous, so one cell's lane values are adjacent.
        prev = np.zeros((max_cols + 1, group), dtype=work)
        curr = np.zeros((max_cols + 1, group), dtype=work)
        max_y = np.full((max_cols, group), neg, dtype=work)
        k_up = (ext * np.arange(1, max_cols + 1, dtype=work))[:, None]
        x_dn = (ext * np.arange(2, max_cols + 1, dtype=work))[:, None]
        inner = np.empty((max_cols, group), dtype=work)
        b = np.empty((max_cols, group), dtype=work)

        for y in range(1, max_rows + 1):
            diag = prev[:max_cols]
            erow = subs[lane_idx, codes1[y - 1]].T  # (cols, lanes)

            np.add(diag, k_up, out=b)
            b -= open_
            np.maximum.accumulate(b, axis=0, out=b)
            np.maximum(max_y, diag, out=inner)
            if max_cols > 1:
                np.maximum(inner[1:], b[:-1] - x_dn, out=inner[1:])

            np.add(inner, erow, out=curr[1:])
            np.maximum(curr, 0, out=curr)
            if self.dtype == "int16":
                np.minimum(curr, INT16_MAX, out=curr)
            for lane, p in enumerate(problems):
                if p.override is not None and y <= p.rows:
                    mask = p.override.row_mask(y)
                    if mask is not None:
                        curr[1 : p.cols + 1, lane][mask] = 0

            np.maximum(max_y, diag - open_, out=max_y)
            max_y -= ext

            # Harvest lanes whose matrix ends at this row.
            for lane in np.flatnonzero(rows_l == y):
                p = problems[lane]
                out = np.zeros(p.cols + 1, dtype=np.float64)
                out[1:] = curr[1 : p.cols + 1, lane]
                results[lane] = out

            prev, curr = curr, prev

        return [r for r in results]  # every lane harvested by construction


def _sse() -> LanesEngine:
    return LanesEngine(lanes=4, dtype="int16")


def _sse2() -> LanesEngine:
    return LanesEngine(lanes=8, dtype="int16")


register_engine("lanes", LanesEngine)
register_engine("lanes-sse", _sse)
register_engine("lanes-sse2", _sse2)
