"""Alignment engine interface.

An *engine* evaluates the paper's Equation 1 / Figure 3 recurrence for
one (or, for the lane engine, several) pairwise local alignments.  The
three concrete engines mirror the paper's instruction-set tiers:

=================  =====================================================
``scalar``         pure-Python reference — the "conventional
                   instruction set" baseline of Table 2
``vector``         numpy row-vectorised — one matrix, each row computed
                   with O(1) array operations (the per-row running
                   maximum ``MaxX`` becomes a prefix-max scan)
``lanes``          batched — G neighbouring matrices computed in
                   lockstep with lane-interleaved entries, the paper's
                   coarse-grained SSE/SSE2 technique (§4.1, Figures 6–7)
=================  =====================================================

Engines only ever *score*; traceback lives in
:mod:`repro.align.traceback` and operates on a full matrix produced by
:func:`repro.align.matrix.full_matrix`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties
from ..sequences.sequence import Sequence
from .profile import ProfileView
from .pruning import PruneGate

__all__ = [
    "NEG_INF",
    "OverrideProvider",
    "AlignmentProblem",
    "AlignmentEngine",
    "register_engine",
    "get_engine",
    "available_engines",
]

#: Sentinel for "no gap possible yet" in the running maxima.  Matrix
#: values are always >= 0, so any sufficiently negative value works; we
#: use -inf in float engines and a large negative integer in the lane
#: engine's integer modes.
NEG_INF = float("-inf")


class OverrideProvider(Protocol):
    """Supplies the per-row override mask of the paper's override triangle.

    ``row_mask(y)`` returns, for the local matrix row ``y`` (1-based), a
    boolean array over the local columns ``1..cols`` where ``True``
    forces the corresponding matrix entry to zero — or ``None`` when no
    entry of that row is overridden (the overwhelmingly common case,
    since the triangle is sparse).
    """

    def row_mask(self, y: int) -> np.ndarray | None: ...


@dataclass(frozen=True)
class AlignmentProblem:
    """One local-alignment instance: two code arrays plus scoring model.

    ``seq1`` runs vertically (matrix rows ``y = 1..len(seq1)``), ``seq2``
    horizontally (columns ``x = 1..len(seq2)``), matching Figure 2.  The
    optional ``override`` masks entries contained in previously accepted
    top alignments.  The optional ``profile`` is a precomputed
    substitution gather for ``seq2`` (see :mod:`repro.align.profile`);
    engines that honour it slice views instead of re-gathering
    ``exchange.scores[:, seq2]`` on every call.  The optional ``prune``
    gate (see :mod:`repro.align.pruning`) lets engines stop the fill
    the moment its score upper bound sinks below the acceptance
    threshold; engines that ignore it simply compute the full matrix
    (pruning is an optimisation, never a correctness requirement).
    """

    seq1: np.ndarray
    seq2: np.ndarray
    exchange: ExchangeMatrix
    gaps: GapPenalties
    override: OverrideProvider | None = None
    profile: ProfileView | None = None
    prune: PruneGate | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "seq1", np.ascontiguousarray(self.seq1, dtype=np.int8))
        object.__setattr__(self, "seq2", np.ascontiguousarray(self.seq2, dtype=np.int8))
        if self.profile is not None and self.profile.cols != self.seq2.size:
            raise ValueError(
                f"profile window spans {self.profile.cols} columns but seq2 "
                f"has {self.seq2.size}"
            )

    def substitution_rows(self) -> np.ndarray:
        """``(n_symbols, cols)`` float64 substitution scores for ``seq2``.

        A zero-copy profile view when the problem carries one, otherwise
        the classic per-call fancy-index gather.
        """
        if self.profile is not None:
            return self.profile.scores
        return self.exchange.scores[:, self.seq2.astype(np.int64)]

    def substitution_rows_int(self) -> np.ndarray:
        """Integer (int64) variant for the lane engine's int modes."""
        if self.profile is not None:
            return self.profile.integer_scores()
        return self.exchange.as_integers().astype(np.int64)[
            :, self.seq2.astype(np.int64)
        ]

    @classmethod
    def from_sequences(
        cls,
        seq1: Sequence | str,
        seq2: Sequence | str,
        exchange: ExchangeMatrix,
        gaps: GapPenalties = GapPenalties(),
        override: OverrideProvider | None = None,
    ) -> "AlignmentProblem":
        """Build a problem from :class:`Sequence` objects or raw text."""
        if isinstance(seq1, str):
            seq1 = Sequence(seq1, exchange.alphabet)
        if isinstance(seq2, str):
            seq2 = Sequence(seq2, exchange.alphabet)
        return cls(seq1.codes, seq2.codes, exchange, gaps, override)

    @property
    def rows(self) -> int:
        """Number of matrix rows (length of the vertical sequence)."""
        return self.seq1.size

    @property
    def cols(self) -> int:
        """Number of matrix columns (length of the horizontal sequence)."""
        return self.seq2.size

    @property
    def cells(self) -> int:
        """Matrix size — the unit of the engines' cost model."""
        return self.rows * self.cols


class AlignmentEngine(ABC):
    """Computes Equation 1 scores for alignment problems."""

    #: Registry key, e.g. ``"vector"``.
    name: str = "abstract"

    def describe(self) -> str:
        """Configuration tag for stats/bench attribution (default: name)."""
        return self.name

    @abstractmethod
    def last_row(self, problem: AlignmentProblem) -> np.ndarray:
        """The bottom matrix row ``M[rows, 0..cols]`` as float64.

        Index 0 is the boundary column (always 0).  Only the bottom row
        is needed to locate top alignments (Appendix A), which is what
        makes the O(n²)-space algorithm possible.
        """

    def score(self, problem: AlignmentProblem) -> float:
        """Best bottom-row score (the task score used by the queue)."""
        return float(self.last_row(problem).max())

    def last_rows_batch(self, problems: list[AlignmentProblem]) -> list[np.ndarray]:
        """Bottom rows for several problems.

        The default loops; the lane engine overrides this with a true
        lockstep batch.
        """
        return [self.last_row(p) for p in problems]


_ENGINES: dict[str, Callable[[], AlignmentEngine]] = {}


def register_engine(name: str, factory: Callable[[], AlignmentEngine]) -> None:
    """Register an engine factory under ``name`` (last write wins)."""
    _ENGINES[name] = factory


def get_engine(name: str | AlignmentEngine = "vector") -> AlignmentEngine:
    """Instantiate a registered engine, or pass an instance through."""
    if isinstance(name, AlignmentEngine):
        return name
    try:
        factory = _ENGINES[name]
    except KeyError:
        raise KeyError(
            f"unknown engine {name!r}; available: {sorted(_ENGINES)}"
        ) from None
    return factory()


def available_engines() -> list[str]:
    """Names of all registered engines."""
    return sorted(_ENGINES)
