"""Anti-diagonal (wavefront) engine — the design the paper rejected.

§4.1: "It is possible to compute the entries diagonally, from the left
or lower border to the right or upper border, such that all entries in
a diagonal can be computed independently, but the administrative
overhead is large."

This engine implements exactly that traversal so the claim can be
measured.  All cells of anti-diagonal ``d = y + x`` are computed with
one batch of vector operations: their dependencies — the previous row's
diagonal neighbours, the per-row ``MaxX`` states and per-column ``MaxY``
states — are all complete by the time ``d`` is processed, because those
cells lie on diagonals ``< d``.

The administrative overhead shows up as the gather/scatter fancy
indexing every diagonal needs (and the O(n²) matrix that makes the
gathers addressable); ``benchmarks/bench_diagonal.py`` compares it
against the row-vectorised engine, reproducing the paper's judgment.
"""

from __future__ import annotations

import numpy as np

from .base import AlignmentEngine, AlignmentProblem, register_engine

__all__ = ["DiagonalEngine"]


class DiagonalEngine(AlignmentEngine):
    """Wavefront evaluation of the Equation 1 recurrence."""

    name = "diagonal"

    def last_row(self, problem: AlignmentProblem) -> np.ndarray:
        return self.full_matrix(problem)[-1].astype(np.float64)

    def full_matrix(self, problem: AlignmentProblem) -> np.ndarray:
        """The complete matrix, computed one anti-diagonal at a time."""
        rows, cols = problem.rows, problem.cols
        M = np.zeros((rows + 1, cols + 1), dtype=np.float64)
        if rows == 0 or cols == 0:
            return M
        open_, ext = problem.gaps.open_, problem.gaps.extend
        override = problem.override
        sub = problem.exchange.scores[:, problem.seq2.astype(np.int64)]
        seq1 = problem.seq1.astype(np.int64)

        max_x = np.full(rows + 1, -np.inf, dtype=np.float64)  # per-row running maxima
        max_y = np.full(cols + 1, -np.inf, dtype=np.float64)  # per-column running maxima

        # Pre-fetch override masks per row (None when clear).
        masks = None
        if override is not None:
            masks = [None] + [override.row_mask(y) for y in range(1, rows + 1)]

        for d in range(2, rows + cols + 1):
            y_lo = max(1, d - cols)
            y_hi = min(rows, d - 1)
            ys = np.arange(y_lo, y_hi + 1)
            xs = d - ys
            diag = M[ys - 1, xs - 1]  # gather: the "administrative overhead"
            e = sub[seq1[ys - 1], xs - 1]
            inner = np.maximum(np.maximum(max_x[ys], max_y[xs]), diag)
            values = np.maximum(0.0, e + inner)
            if masks is not None:
                for idx, y in enumerate(ys):
                    mask = masks[y]
                    if mask is not None and mask[xs[idx] - 1]:
                        values[idx] = 0.0
            M[ys, xs] = values  # scatter
            seed = diag - open_
            max_x[ys] = np.maximum(seed, max_x[ys]) - ext
            max_y[xs] = np.maximum(seed, max_y[xs]) - ext
        return M


register_engine("diagonal", DiagonalEngine)
