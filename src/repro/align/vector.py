"""Numpy row-vectorised engine.

The Figure 3 recurrence looks loop-carried because of the running
maximum ``MaxX``, but ``MaxX`` is only fed from the *previous* row, so
each row depends exclusively on the row above it.  The value ``MaxX``
holds when column ``x`` is evaluated is

    MaxX(x) = max_{k=1..x-1} ( M[y-1][k-1] - open - ext * (x - k) )

which, after the affine substitution ``B[k] = M[y-1][k-1] - open +
ext*k``, collapses to a prefix maximum::

    MaxX(x) = prefix_max(B)[x-1] - ext * x

i.e. one ``np.maximum.accumulate`` per row.  ``MaxY`` is an ordinary
elementwise update across columns.  The whole row is therefore O(1)
numpy calls — the Python-level analogue of computing a full SIMD vector
per instruction, with the vector register as wide as the row.

Scores are bit-identical to :class:`~repro.align.scalar.ScalarEngine`
for integral inputs (all operations stay exact in float64).
"""

from __future__ import annotations

import numpy as np

from .base import AlignmentEngine, AlignmentProblem, register_engine

__all__ = ["VectorEngine", "iter_rows"]


def iter_rows(problem: AlignmentProblem):
    """Yield matrix rows ``(y, M[y, 0..cols])`` for ``y = 1..rows``.

    The workhorse shared by :class:`VectorEngine` (which keeps only the
    last row) and :func:`repro.align.matrix.full_matrix` (which stacks
    them).  Rows are emitted as float64 arrays of length ``cols + 1``
    with the boundary column at index 0; the yielded array is reused
    between iterations, so callers that keep rows must copy.
    """
    rows, cols = problem.rows, problem.cols
    open_, ext = problem.gaps.open_, problem.gaps.extend
    override = problem.override
    # Exchange columns for the horizontal sequence: a zero-copy query
    # profile view when the problem carries one, else a one-off gather.
    # Each row's exchange values are then a plain row view (the vector
    # analogue of the paper's shared exchange lookup across lanes).
    sub = problem.substitution_rows()

    prev = np.zeros(cols + 1, dtype=np.float64)
    curr = np.zeros(cols + 1, dtype=np.float64)
    max_y = np.full(cols, -np.inf, dtype=np.float64)
    # Decay offsets for the prefix-max trick, hoisted out of the loop.
    k_up = ext * np.arange(1.0, cols + 1.0)  # ext * k     for k = 1..cols
    x_dn = ext * np.arange(2.0, cols + 1.0)  # ext * x     for x = 2..cols
    inner = np.empty(cols, dtype=np.float64)
    b = np.empty(cols, dtype=np.float64)

    for y in range(1, rows + 1):
        diag = prev[:cols]  # diag[x-1] = M[y-1][x-1]
        erow = sub[problem.seq1[y - 1]]

        # MaxX via prefix max of B[k] = diag[k-1] - open + ext*k.
        np.add(diag, k_up, out=b)
        b -= open_
        np.maximum.accumulate(b, out=b)
        # inner = max(MaxX, MaxY, diag), assembled in place.
        np.maximum(max_y, diag, out=inner)
        if cols > 1:
            np.maximum(inner[1:], b[:-1] - x_dn, out=inner[1:])

        np.add(inner, erow, out=curr[1:])
        np.maximum(curr, 0.0, out=curr)
        if override is not None:
            mask = override.row_mask(y)
            if mask is not None:
                curr[1:][mask] = 0.0

        # MaxY[x] <- max(diag - open, MaxY[x]) - ext, for the next row.
        np.maximum(max_y, diag - open_, out=max_y)
        max_y -= ext

        yield y, curr
        prev, curr = curr, prev


class VectorEngine(AlignmentEngine):
    """One matrix at a time, each row as a handful of numpy operations."""

    name = "vector"

    def last_row(self, problem: AlignmentProblem) -> np.ndarray:
        if problem.rows == 0 or problem.cols == 0:
            return np.zeros(problem.cols + 1, dtype=np.float64)
        gate = problem.prune
        cutoffs = gate.row_cutoffs() if gate is not None else None
        row = np.zeros(problem.cols + 1, dtype=np.float64)
        if cutoffs is None:
            for _, row in iter_rows(problem):
                pass
            return row.copy()
        best = 0.0
        for y, row in iter_rows(problem):
            row_max = row.max()
            if row_max > best:
                best = float(row_max)
            if best <= cutoffs[y]:
                # Provably below the floor: the unfilled rows stay
                # unfilled and the driver records gate.bound instead.
                gate.record_row_prune(y, best)
                return np.zeros(problem.cols + 1, dtype=np.float64)
        return row.copy()


register_engine("vector", VectorEngine)
