"""Alignment engines: the Equation 1 recurrence at three "instruction tiers"."""

from .base import (
    NEG_INF,
    AlignmentEngine,
    AlignmentProblem,
    OverrideProvider,
    available_engines,
    get_engine,
    register_engine,
)
from .diagonal import DiagonalEngine
from .gotoh import GotohEngine, gotoh_matrix
from .lanes import INT16_MAX, LanesEngine
from .matrix import full_matrix, matrix_for_texts
from .profile import ProfileView, QueryProfile
from .pruning import PruneContext, PruneGate
from .scalar import ScalarEngine
from .striped import StripedEngine
from .traceback import (
    AlignmentPath,
    TracebackStep,
    alignment_identity,
    render_alignment,
    traceback,
)
from .vector import VectorEngine, iter_rows

__all__ = [
    "NEG_INF",
    "INT16_MAX",
    "AlignmentEngine",
    "AlignmentProblem",
    "OverrideProvider",
    "available_engines",
    "get_engine",
    "register_engine",
    "ScalarEngine",
    "VectorEngine",
    "GotohEngine",
    "DiagonalEngine",
    "gotoh_matrix",
    "LanesEngine",
    "StripedEngine",
    "QueryProfile",
    "ProfileView",
    "PruneContext",
    "PruneGate",
    "full_matrix",
    "matrix_for_texts",
    "iter_rows",
    "traceback",
    "render_alignment",
    "alignment_identity",
    "AlignmentPath",
    "TracebackStep",
]
