"""Query-profile cache — precomputed substitution gathers.

Every alignment of the top-alignment workload scores pieces of the
*same* query sequence: split ``r`` aligns ``S[1..r]`` (vertically)
against ``S[r+1..m]`` (horizontally).  The engines' first step used to
be the per-call gather ``E[:, seq2]`` — an ``n_symbols x cols`` fancy
index repeated for every (re)alignment, even though ``seq2`` is always
a suffix of the one query.  The SIMD Smith–Waterman literature (the SSW
library of Zhao et al., Farrar's striped method) removes exactly this
overhead by building a *query profile* once per query; this module is
the row-vectorised analogue.

:class:`QueryProfile` computes the full ``n_symbols x m`` gather once
per sequence — in float64 eagerly and in integer form lazily, for the
lane engine's ``int32``/``int16`` modes.  :class:`ProfileView` is a
zero-copy column window ``[start, stop)`` that
:class:`~repro.align.base.AlignmentProblem` carries to the engines,
which then *slice* instead of re-gathering.  Engines that receive no
profile fall back to the per-call gather, so standalone problems are
unaffected.
"""

from __future__ import annotations

import numpy as np

from ..scoring.exchange import ExchangeMatrix

__all__ = ["QueryProfile", "ProfileView"]


class QueryProfile:
    """The full substitution gather ``P[a, x] = E[a, seq[x]]`` of one query.

    Parameters
    ----------
    codes:
        Residue codes of the query sequence (the horizontal axis of
        every view taken from this profile).
    exchange:
        The exchange matrix being gathered.
    """

    __slots__ = ("codes", "exchange", "scores", "_integers")

    def __init__(self, codes: np.ndarray, exchange: ExchangeMatrix) -> None:
        self.codes = np.ascontiguousarray(codes, dtype=np.int8)
        self.exchange = exchange
        gathered = exchange.scores[:, self.codes.astype(np.int64)]
        gathered = np.ascontiguousarray(gathered)
        gathered.setflags(write=False)
        #: ``(n_symbols, len(codes))`` float64 gather, read-only.
        self.scores = gathered
        self._integers: np.ndarray | None = None

    def __len__(self) -> int:
        return self.codes.size

    @property
    def n_symbols(self) -> int:
        """Number of residue codes the profile's exchange matrix covers."""
        return self.scores.shape[0]

    def integer_scores(self) -> np.ndarray:
        """The gather as ``int64`` (lazily built; raises if fractional).

        The lane engine's integer modes do their arithmetic in int64 and
        saturate values afterwards, so one integer copy serves both the
        ``int32`` and ``int16`` modes.
        """
        if self._integers is None:
            ints = self.exchange.as_integers().astype(np.int64)
            ints = np.ascontiguousarray(ints[:, self.codes.astype(np.int64)])
            ints.setflags(write=False)
            self._integers = ints
        return self._integers

    def view(self, start: int, stop: int | None = None) -> "ProfileView":
        """Zero-copy window over query columns ``[start, stop)``."""
        return ProfileView(self, start, len(self) if stop is None else stop)

    def suffix(self, r: int) -> "ProfileView":
        """The window of split ``r``'s horizontal sequence ``S[r+1..m]``."""
        return self.view(r)


class ProfileView:
    """A column window of a :class:`QueryProfile` (what engines consume).

    Slicing a float64/int64 numpy array along its last axis yields a
    view, so a :class:`ProfileView` costs O(1) memory no matter how many
    alignment problems share the underlying profile.
    """

    __slots__ = ("profile", "start", "stop")

    def __init__(self, profile: QueryProfile, start: int, stop: int) -> None:
        if not 0 <= start <= stop <= len(profile):
            raise ValueError(
                f"profile window [{start}, {stop}) outside 0..{len(profile)}"
            )
        self.profile = profile
        self.start = start
        self.stop = stop

    @property
    def cols(self) -> int:
        """Width of the window (must equal the problem's column count)."""
        return self.stop - self.start

    @property
    def scores(self) -> np.ndarray:
        """Float64 ``(n_symbols, cols)`` view — no copy, no gather."""
        return self.profile.scores[:, self.start : self.stop]

    def integer_scores(self) -> np.ndarray:
        """Int64 ``(n_symbols, cols)`` view for the integer lane modes."""
        return self.profile.integer_scores()[:, self.start : self.stop]
