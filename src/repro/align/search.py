"""Batched database search — the paper's generalisation claim (§6).

"We claim that the way we perform parallel alignment using multimedia
extensions is also applicable to other application areas that require
many alignments, and thus to many bio-informatics applications. ... In
contrast to our application, the general case requires looking up
exchange values sequentially, slightly decreasing the parallel
performance."

This module is that general case: scoring one query against a database
of *unrelated* sequences, batched through the lane engine (which
already performs per-lane exchange gathers, exactly the sequential
lookup the paper predicts).  Database search needs the best score
*anywhere* in each matrix — not the bottom row, which is specific to
the top-alignment structure — so the lane sweep here tracks a running
per-lane maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties
from ..sequences.sequence import Sequence
from .base import AlignmentProblem
from .lanes import LanesEngine
from .vector import iter_rows

__all__ = ["SearchHit", "best_local_score", "best_scores_batch", "search_database"]


def best_local_score(problem: AlignmentProblem) -> float:
    """Best local alignment score anywhere in one matrix (row sweep)."""
    if problem.rows == 0 or problem.cols == 0:
        return 0.0
    best = 0.0
    for _, row in iter_rows(problem):
        m = float(row.max())
        if m > best:
            best = m
    return best


def best_scores_batch(
    problems: list[AlignmentProblem], *, engine: LanesEngine | None = None
) -> list[float]:
    """Best-anywhere scores for a batch, computed in lane lockstep.

    Mirrors :meth:`repro.align.lanes.LanesEngine.last_rows_batch` but
    tracks a running per-lane maximum instead of harvesting bottom rows
    (padding garbage never wins: padded lanes only extend rows/columns
    whose values are ignored per lane).
    """
    if not problems:
        return []
    engine = engine or LanesEngine(lanes=8, dtype="float64")
    if engine.dtype != "float64":
        raise ValueError("best_scores_batch requires the float64 lane mode")
    gaps = problems[0].gaps
    exchange = problems[0].exchange
    for p in problems[1:]:
        if p.gaps != gaps:
            raise ValueError("lane group must share gap penalties")
        if p.exchange is not exchange and p.exchange.name != exchange.name:
            raise ValueError("lane group must share the exchange matrix")

    group = len(problems)
    rows_l = np.array([p.rows for p in problems])
    cols_l = np.array([p.cols for p in problems])
    max_rows = int(rows_l.max(initial=0))
    max_cols = int(cols_l.max(initial=0))
    best = np.zeros(group, dtype=np.float64)
    if max_rows == 0 or max_cols == 0:
        return best.tolist()

    open_, ext = gaps.open_, gaps.extend
    nsym = exchange.size
    subs = np.zeros((group, nsym, max_cols), dtype=np.float64)
    codes1 = np.zeros((max_rows, group), dtype=np.int64)
    for lane, p in enumerate(problems):
        if p.cols:
            subs[lane, :, : p.cols] = exchange.scores[:, p.seq2.astype(np.int64)]
        codes1[: p.rows, lane] = p.seq1
    lane_idx = np.arange(group)

    prev = np.zeros((max_cols + 1, group), dtype=np.float64)
    curr = np.zeros((max_cols + 1, group), dtype=np.float64)
    max_y = np.full((max_cols, group), -np.inf, dtype=np.float64)
    k_up = (ext * np.arange(1, max_cols + 1, dtype=np.float64))[:, None]
    x_dn = (ext * np.arange(2, max_cols + 1, dtype=np.float64))[:, None]
    inner = np.empty((max_cols, group), dtype=np.float64)
    b = np.empty((max_cols, group), dtype=np.float64)
    # Mask out padded columns/rows so garbage never enters the maxima.
    col_valid = (np.arange(max_cols)[:, None] < cols_l[None, :])

    for y in range(1, max_rows + 1):
        diag = prev[:max_cols]
        erow = subs[lane_idx, codes1[y - 1]].T

        np.add(diag, k_up, out=b)
        b -= open_
        np.maximum.accumulate(b, axis=0, out=b)
        np.maximum(max_y, diag, out=inner)
        if max_cols > 1:
            np.maximum(inner[1:], b[:-1] - x_dn, out=inner[1:])

        np.add(inner, erow, out=curr[1:])
        np.maximum(curr, 0.0, out=curr)

        np.maximum(max_y, diag - open_, out=max_y)
        max_y -= ext

        row_valid = (y <= rows_l)
        candidates = np.where(col_valid & row_valid[None, :], curr[1:], 0.0)
        np.maximum(best, candidates.max(axis=0), out=best)
        prev, curr = curr, prev

    return best.tolist()


@dataclass(frozen=True)
class SearchHit:
    """One database match."""

    index: int
    id: str
    length: int
    score: float


def search_database(
    query: Sequence,
    database: list[Sequence],
    exchange: ExchangeMatrix,
    gaps: GapPenalties = GapPenalties(),
    *,
    lanes: int = 8,
    top: int | None = None,
) -> list[SearchHit]:
    """Rank database sequences by best local alignment score to ``query``.

    Matrices are processed in groups of ``lanes`` (sorted by size so
    group members have similar dimensions — the paper's prerequisite
    "that the matrices have more or less the same dimensions").
    """
    if lanes < 1:
        raise ValueError("lanes must be >= 1")
    order = sorted(range(len(database)), key=lambda i: len(database[i]))
    scores = [0.0] * len(database)
    engine = LanesEngine(lanes=lanes, dtype="float64")
    for start in range(0, len(order), lanes):
        chunk = order[start : start + lanes]
        problems = [
            AlignmentProblem(query.codes, database[i].codes, exchange, gaps)
            for i in chunk
        ]
        for i, score in zip(chunk, best_scores_batch(problems, engine=engine)):
            scores[i] = score
    hits = [
        SearchHit(index=i, id=db.id, length=len(db), score=scores[i])
        for i, db in enumerate(database)
    ]
    hits.sort(key=lambda h: (-h.score, h.index))
    return hits[:top] if top is not None else hits
