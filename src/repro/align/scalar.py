"""Pure-Python reference engine — the paper's "conventional" baseline.

This is a direct transliteration of Figure 3's ``ComputeMatrix()``
pseudo code, one cell at a time, with the override-triangle hook from
§3.  It exists for two reasons:

* as the executable specification every vectorised engine is tested
  against (bit-identical scores), and
* as the "conventional instruction set" row of Table 2 — the thing the
  SIMD engines are benchmarked relative to.

It is intentionally *not* optimised beyond hoisting attribute lookups.
"""

from __future__ import annotations

import numpy as np

from .base import NEG_INF, AlignmentEngine, AlignmentProblem, register_engine

__all__ = ["ScalarEngine"]


class ScalarEngine(AlignmentEngine):
    """Cell-by-cell evaluation of the Figure 3 recurrence."""

    name = "scalar"

    def last_row(self, problem: AlignmentProblem) -> np.ndarray:
        rows, cols = problem.rows, problem.cols
        if rows == 0 or cols == 0:
            return np.zeros(cols + 1, dtype=np.float64)

        exchange = problem.exchange.scores
        open_, ext = problem.gaps.open_, problem.gaps.extend
        seq1, seq2 = problem.seq1, problem.seq2
        override = problem.override

        # Only the previous row is stored (the paper's memory argument):
        # `prev[x]` is M[y-1][x], `curr[x]` is M[y][x].
        prev = [0.0] * (cols + 1)
        curr = [0.0] * (cols + 1)
        max_y = [NEG_INF] * (cols + 1)

        for y in range(1, rows + 1):
            erow = exchange[seq1[y - 1]]
            mask = override.row_mask(y) if override is not None else None
            max_x = NEG_INF
            # repro-lint: allow[RPR001] intentional: this engine IS the
            # per-cell "conventional instruction set" baseline of Table 2
            for x in range(1, cols + 1):
                diag = prev[x - 1]
                value = erow[seq2[x - 1]] + max(max_x, max_y[x], diag)
                if value < 0.0:
                    value = 0.0
                if mask is not None and mask[x - 1]:
                    value = 0.0
                curr[x] = value
                seed = diag - open_
                max_x = (seed if seed > max_x else max_x) - ext
                if seed > max_y[x]:
                    max_y[x] = seed - ext
                else:
                    max_y[x] -= ext
            prev, curr = curr, prev

        out = np.array(prev, dtype=np.float64)
        out[0] = 0.0
        return out


register_engine("scalar", ScalarEngine)
