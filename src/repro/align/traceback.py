"""Traceback of Equation 1 alignments.

Given a full score matrix, :func:`traceback` reconstructs the chain of
matched residue pairs ending at a chosen bottom-row cell, "in reverse
order ... in the direction of the upper left-hand-side corner" (§2.1).

Under Equation 1 every path cell is a *matched pair* — gap moves jump
from ``(y, x)`` to a cell in row ``y-1`` (horizontal gap) or column
``x-1`` (vertical gap), consuming exactly one residue of each sequence
plus the gap.  The returned path is therefore exactly the set of cells
the override triangle must mark after a top alignment is accepted (§3).

Matrix values are always >= 0 (local alignment), so the inner maximum
``max(MaxX, MaxY, diag)`` is >= 0 whenever the diagonal neighbour
exists; a path starts at the cell whose inner maximum is a zero
diagonal (boundary or zero cell).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import AlignmentProblem

__all__ = [
    "TracebackStep",
    "AlignmentPath",
    "traceback",
    "render_alignment",
    "alignment_identity",
]


@dataclass(frozen=True)
class TracebackStep:
    """One matched pair on an alignment path (local 1-based coordinates)."""

    y: int
    x: int


@dataclass(frozen=True)
class AlignmentPath:
    """A reconstructed local alignment.

    ``pairs`` lists the matched cells from first to last (top-left to
    bottom-right); ``score`` is the matrix value at the final cell.
    """

    pairs: tuple[TracebackStep, ...]
    score: float

    @property
    def start(self) -> TracebackStep:
        """First matched pair."""
        return self.pairs[0]

    @property
    def end(self) -> TracebackStep:
        """Last matched pair (the traceback's starting cell)."""
        return self.pairs[-1]

    def __len__(self) -> int:
        return len(self.pairs)


def traceback(
    problem: AlignmentProblem,
    matrix: np.ndarray,
    end_y: int,
    end_x: int,
) -> AlignmentPath:
    """Reconstruct the alignment ending at ``matrix[end_y, end_x]``.

    Ties are broken deterministically: diagonal first, then the
    shortest horizontal gap, then the shortest vertical gap — so
    equivalent optima (like the paper's top alignments 1 and 2 in
    Figure 4) always resolve the same way.
    """
    exchange = problem.exchange.scores
    open_, ext = problem.gaps.open_, problem.gaps.extend
    seq1, seq2 = problem.seq1, problem.seq2

    score = float(matrix[end_y, end_x])
    if score <= 0.0:
        raise ValueError(
            f"cannot trace back from a non-positive cell ({end_y}, {end_x})"
        )

    pairs: list[TracebackStep] = []
    y, x = end_y, end_x
    while True:
        pairs.append(TracebackStep(y, x))
        e = float(exchange[seq1[y - 1], seq2[x - 1]])
        target = float(matrix[y, x]) - e  # the inner max that produced this cell
        if target <= 0.0:
            # Started here: the diagonal contribution was a zero
            # (boundary, overridden or genuinely zero cell).
            break

        # 1. Diagonal (no gap).
        if matrix[y - 1, x - 1] == target:
            y, x = y - 1, x - 1
            if y == 0 or x == 0 or matrix[y, x] == 0.0:
                # Walked onto the boundary/zero start cell; the pair list
                # is complete. (matrix[y, x] > 0 continues the loop.)
                break
            continue

        # 2. Horizontal gap: predecessor (y-1, c) with c <= x-2,
        #    penalty open + ext * (x - 1 - c); shortest gap first.
        found = False
        for c in range(x - 2, -1, -1):
            if matrix[y - 1, c] - (open_ + ext * (x - 1 - c)) == target:
                y, x = y - 1, c
                found = True
                break
        if found:
            if matrix[y, x] == 0.0 or x == 0:
                break
            continue

        # 3. Vertical gap: predecessor (r, x-1) with r <= y-2,
        #    penalty open + ext * (y - 1 - r); shortest gap first.
        for r in range(y - 2, -1, -1):
            if matrix[r, x - 1] - (open_ + ext * (y - 1 - r)) == target:
                y, x = r, x - 1
                found = True
                break
        if not found:
            raise AssertionError(
                f"inconsistent matrix: no predecessor explains cell ({y}, {x})"
            )
        if matrix[y, x] == 0.0 or y == 0:
            break

    pairs.reverse()
    return AlignmentPath(tuple(pairs), score)


def alignment_identity(problem: AlignmentProblem, path: AlignmentPath) -> float:
    """Fraction of aligned columns (matches + gaps) that are identical
    residue pairs.

    The paper's §1 framing — "frequently, only 10–25 % of the amino
    acids in a repeated protein subsequence are conserved" — makes this
    the natural summary statistic of a top alignment.
    """
    if not path.pairs:
        return 0.0
    matches = sum(
        1
        for step in path.pairs
        if problem.seq1[step.y - 1] == problem.seq2[step.x - 1]
    )
    columns = len(path.pairs)
    prev = None
    for step in path.pairs:
        if prev is not None:
            columns += (step.y - prev.y - 1) + (step.x - prev.x - 1)
        prev = step
    return matches / columns


def render_alignment(
    problem: AlignmentProblem, path: AlignmentPath
) -> tuple[str, str, str]:
    """Pretty-print a path as the paper's three-line superposition.

    Returns ``(top, middle, bottom)`` where the middle line carries
    ``|`` for matches, spaces for mismatches, and gaps appear as ``-``
    padding in the opposite sequence.
    """
    alphabet = problem.exchange.alphabet
    s1 = alphabet.decode(problem.seq1)
    s2 = alphabet.decode(problem.seq2)
    top: list[str] = []
    mid: list[str] = []
    bot: list[str] = []
    prev: TracebackStep | None = None
    for step in path.pairs:
        if prev is not None:
            gap_y = step.y - prev.y - 1
            gap_x = step.x - prev.x - 1
            # Under Equation 1 at most one of these is positive per move.
            for k in range(gap_y):
                top.append(s1[prev.y + k])
                mid.append(" ")
                bot.append("-")
            for k in range(gap_x):
                top.append("-")
                mid.append(" ")
                bot.append(s2[prev.x + k])
        a, b = s1[step.y - 1], s2[step.x - 1]
        top.append(a)
        mid.append("|" if a == b else " ")
        bot.append(b)
        prev = step
    return "".join(top), "".join(mid), "".join(bot)
