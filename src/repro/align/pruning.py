"""Exact in-kernel pruning bounds (ALAE-style).

The best-first heap already exploits stale scores as *cross-task* upper
bounds (§3); this module pushes the same discipline *into* the matrix
fill.  From the :class:`~repro.align.profile.QueryProfile` two bound
tables are derived once per sequence:

* ``sufmax[a, j] = max_{x >= j} max(P[a, x], 0)`` — the most a row of
  residue ``a`` can contribute to any alignment using columns ``>= j``
  (each matrix row matches at most one column, and gap penalties only
  subtract);
* ``col_suffix[j] = sum_{x >= j} max_a max(P[a, x], 0)`` — the most the
  columns ``>= j`` can contribute in total (each column matches at most
  one row).

From these, split ``r`` gets three provable upper bounds on its task
score (first pass *and* realignment — the override triangle and the
Appendix A shadow test only ever lower scores, so profile-level bounds
dominate both):

* **lane bound** (before any cell is filled):
  ``B0 = min(sum of per-row gains, col_suffix[r], cap)`` where ``cap``
  is the task's previous heap score — itself a valid upper bound;
* **row bound** (after filling row ``y``):
  ``best-so-far + rem[y]`` where ``rem[y]`` sums the per-row gains of
  the unfilled rows ``y+1..r`` (induction over the recurrence: every
  cell's predecessor lives in an earlier row, and predecessors are
  debited non-negative gap penalties);
* **column bound** (after filling all rows of columns ``< j``, the
  striped engine's traversal): ``max filled cell + col_suffix[r + j]``
  (every path into the unfilled columns crosses the filled region).

**Soundness of the skip.**  A pruned alignment never produces a score —
it records its upper bound ``B`` as the task's heap score and leaves
the task *stale* (``aligned_with`` untouched, no bottom row cached), so
acceptance — which requires a fresh alignment — can never fire on a
bound.  Accepted tops therefore stay bit-identical by the same argument
that covers stale heap scores.  Two prune levels with different
thresholds keep the search loop-free:

* the **lane** level prunes against the *live* acceptance threshold
  (the next-best heap score): a deferred task re-enters the heap at
  ``B0`` strictly below that score, so the next pop makes progress, and
  when the task eventually tops the heap again the threshold has sunk
  to ``<= B0`` and it aligns for real — at most one deferral per
  (task, triangle version);
* the **row/column** levels prune only against the static ``floor``
  (the run's ``min_score``): such prunes are *terminal* (the task sinks
  below the acceptance cut-off and the loop's exhaustion test retires
  it), so a partially filled matrix is never refilled from scratch in a
  defer/refill ping-pong.

Saturating integer engines stay covered: clamping values at
``INT16_MAX`` only lowers them, and the induction above holds verbatim
for the clamped recurrence.

The :class:`~repro.analysis.invariants.InvariantChecker` (under
``REPRO_CHECK_INVARIANTS``) additionally recomputes a sampled subset of
pruned fills exhaustively and asserts each recorded bound dominated the
true score.
"""

from __future__ import annotations

import numpy as np

from .profile import QueryProfile

__all__ = ["PruneContext", "PruneGate"]


class PruneContext:
    """Per-sequence bound tables plus the live acceptance threshold.

    One context is built per :class:`~repro.core.topalign.TopAlignmentState`
    (O(n_symbols · m)); the best-first drivers thread the live
    ``threshold`` through it and hand per-split :class:`PruneGate`
    objects to the engines via
    :attr:`~repro.align.base.AlignmentProblem.prune`.

    Parameters
    ----------
    profile:
        The sequence's precomputed substitution gather.
    floor:
        The run's ``min_score`` — scores at or below it are never
        reported, so bounds at or below it prune terminally.
    """

    __slots__ = ("profile", "floor", "threshold", "gain", "col_suffix", "sufmax")

    def __init__(self, profile: QueryProfile, *, floor: float = 0.0) -> None:
        self.profile = profile
        m = len(profile)
        # Positive part of the gather: a cell can contribute at most its
        # substitution score, and never less than 0 (local alignments
        # restart rather than go negative).
        positive = np.maximum(profile.scores, 0.0)
        #: Per-column best possible contribution, ``max_a max(P[a, x], 0)``.
        self.gain = positive.max(axis=0)
        col_suffix = np.zeros(m + 1, dtype=np.float64)
        np.cumsum(self.gain[::-1], out=col_suffix[:m][::-1])
        #: ``col_suffix[j] = sum_{x >= j} gain[x]`` (length m + 1).
        self.col_suffix = col_suffix
        sufmax = np.zeros((positive.shape[0], m + 1), dtype=np.float64)
        np.maximum.accumulate(positive[:, ::-1], axis=1, out=sufmax[:, :m][:, ::-1])
        #: ``sufmax[a, j] = max_{x >= j} max(P[a, x], 0)``.
        self.sufmax = sufmax
        self.floor = float(floor)
        #: Live acceptance threshold — the best score any *other* task
        #: could still realise (drivers keep it at
        #: ``max(floor, next-best heap score)``).
        self.threshold = float(floor)

    def configure(self, min_score: float) -> None:
        """Reset ``floor``/``threshold`` for a run with ``min_score``."""
        self.floor = float(max(min_score, 0.0))
        self.threshold = self.floor

    def gate_for(self, r: int, *, cap: float = np.inf) -> "PruneGate":
        """A fresh per-fill gate for split ``r`` (rows 1..r, cols r+1..m).

        ``cap`` is the task's previous heap score — a valid upper bound
        on the fresh score (stale scores are upper bounds; a seed bound
        is one by construction; ``+inf`` for never-touched tasks).
        """
        return PruneGate(self, r, cap=cap)


class PruneGate:
    """One fill's pruning state: bound tables sliced to split ``r``.

    Engines call :meth:`check_row` (row-major fills) or
    :meth:`check_columns` (the striped engine) and stop filling the
    moment a call returns ``True``; drivers call
    :meth:`prune_before_fill` to skip whole lanes without touching the
    engine.  After a prune, :attr:`bound` carries the provable upper
    bound the driver records as the task's (stale) heap score, and
    :attr:`cells_filled`/:attr:`pruned_cells` split the matrix area
    into evaluated and skipped work for ``RunStats``.
    """

    __slots__ = (
        "context", "r", "rows", "cols", "cap", "rem",
        "best", "pruned", "bound", "cells_filled", "pruned_cells",
    )

    #: Tail fraction below which :meth:`row_cutoffs` reports "not worth
    #: gating": when fewer than this fraction of rows could ever prune,
    #: the per-row bookkeeping costs more than the skipped cells.
    MIN_PRUNABLE_TAIL = 0.15

    def __init__(self, context: PruneContext, r: int, *, cap: float = np.inf) -> None:
        m = len(context.profile)
        if not 1 <= r < m:
            raise ValueError(f"split r={r} outside 1..{m - 1}")
        self.context = context
        self.r = r
        self.rows = r
        self.cols = m - r
        self.cap = float(cap)
        # Per-row gains for rows 1..r: row y holds residue codes[y-1]
        # and may only match columns >= r of the profile.
        codes = context.profile.codes[:r].astype(np.int64)
        rowgain = context.sufmax[codes, r]
        rem = np.zeros(r + 1, dtype=np.float64)
        np.cumsum(rowgain[::-1], out=rem[:r][::-1])
        #: ``rem[y] = sum of gains of the unfilled rows y+1..r``.
        self.rem = rem
        self.best = 0.0
        self.pruned = False
        self.bound = 0.0
        self.cells_filled = 0
        self.pruned_cells = 0

    # -- bound arithmetic --------------------------------------------------

    @property
    def upfront_bound(self) -> float:
        """``B0``: the tightest pre-fill upper bound on the task score."""
        return min(float(self.rem[0]), float(self.context.col_suffix[self.r]), self.cap)

    def _record_prune(self, bound: float, cells_filled: int) -> bool:
        # The recorded bound must stay a non-negative upper bound that
        # never exceeds the task's previous score (heap monotonicity).
        self.bound = max(min(bound, self.cap), 0.0)
        self.pruned = True
        self.cells_filled = cells_filled
        self.pruned_cells = self.rows * self.cols - cells_filled
        return True

    # -- driver-level (lane) prune -----------------------------------------

    def prune_before_fill(self) -> bool:
        """Skip the whole fill when its bound provably cannot win *now*.

        ``B0 < threshold`` defers the task below the next-best heap
        score (it realigns if it ever tops the heap again);
        ``B0 <= floor`` retires it outright.  Either way the prune must
        *strictly* lower the task's heap score — a prune that leaves
        the score unchanged could repeat on every pop, so it falls
        through to a real fill instead (progress guarantee).
        """
        b0 = self.upfront_bound
        if b0 >= self.cap:
            return False
        if b0 <= self.context.floor or b0 < self.context.threshold:
            return self._record_prune(b0, 0)
        return False

    # -- in-fill prunes (floor-only, therefore terminal) -------------------

    def row_cutoffs(self) -> list[float] | None:
        """Per-row prune cutoffs for tight fill loops, or ``None``.

        ``cutoffs[y] = floor - rem[y]``: after filling row ``y`` the
        fill may stop iff its running best cell value is ``<=
        cutoffs[y]`` — the plain-float restatement of :meth:`check_row`
        (``best + rem[y] <= floor``), so engines can keep the per-row
        work to one reduction and one comparison.  ``cutoffs[rows]`` is
        ``-inf`` (a completed fill is returned, never pruned).  Returns
        ``None`` when no prefix of the fill can possibly prune (every
        cutoff negative) or the prunable tail is too short to pay for
        the bookkeeping (:data:`MIN_PRUNABLE_TAIL`); callers then run
        ungated.
        """
        floor = self.context.floor
        # rem is non-increasing, so the prunable tail starts at the
        # first y with rem[y] <= floor (best >= 0 always).
        first = int(np.searchsorted(-self.rem, -floor))
        if self.rows - first < self.rows * self.MIN_PRUNABLE_TAIL:
            return None
        cutoffs = (floor - self.rem).tolist()
        cutoffs[self.rows] = float("-inf")
        return cutoffs

    def record_row_prune(self, y: int, best: float) -> None:
        """Record an in-fill prune decided via :meth:`row_cutoffs`."""
        if best > self.best:
            self.best = best
        self._record_prune(max(best, 0.0) + float(self.rem[y]), y * self.cols)

    def check_row(self, y: int, row_max: float) -> bool:
        """After filling row ``y`` (best cell value ``row_max``): stop?

        Returns ``True`` — and marks the gate pruned — when not even
        the per-row gains of the unfilled rows can lift the running
        best above the floor.  Terminal by construction (see module
        docstring), so engines never refill a pruned matrix.
        """
        if row_max > self.best:
            self.best = row_max
        self.cells_filled = y * self.cols
        if y >= self.rows:
            return False  # fill complete; nothing left to prune
        bound = max(self.best, 0.0) + float(self.rem[y])
        if min(bound, self.cap) <= self.context.floor:
            return self._record_prune(bound, y * self.cols)
        return False

    def check_columns(self, cols_done: int, filled_max: float) -> bool:
        """After filling all rows of the first ``cols_done`` columns: stop?

        The striped engine's column-major analogue of :meth:`check_row`:
        every path ending in an unfilled column crosses the filled
        region (moves only go right/down), so ``filled_max`` plus the
        remaining columns' gains bounds every remaining bottom-row cell
        — and the filled bottom-row cells are already below the floor
        or the fill would not be prunable.
        """
        if cols_done >= self.cols:
            return False
        bound = max(filled_max, 0.0) + float(self.context.col_suffix[self.r + cols_done])
        if min(bound, self.cap) <= self.context.floor:
            return self._record_prune(bound, cols_done * self.rows)
        return False
