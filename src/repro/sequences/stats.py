"""Sequence statistics: composition, entropy, low-complexity masking.

Repeat detectors are routinely confounded by low-complexity tracts
(poly-Q, proline-rich linkers), which dominate alignment scores without
being bona fide domain repeats.  These utilities provide the standard
pre-filters: residue composition, windowed Shannon entropy, and a
SEG-like low-complexity mask that callers can use to screen inputs or
post-filter detected copies.
"""

from __future__ import annotations

import numpy as np

from .sequence import Sequence

__all__ = [
    "composition",
    "shannon_entropy",
    "windowed_entropy",
    "low_complexity_mask",
    "mask_low_complexity",
]


def composition(sequence: Sequence) -> dict[str, float]:
    """Residue frequencies as a letter -> fraction mapping (zeros omitted)."""
    if len(sequence) == 0:
        return {}
    counts = np.bincount(sequence.codes, minlength=sequence.alphabet.size)
    total = counts.sum()
    return {
        sequence.alphabet.symbols[i]: counts[i] / total
        for i in range(sequence.alphabet.size)
        if counts[i]
    }


def shannon_entropy(codes: np.ndarray, *, base: float = 2.0) -> float:
    """Shannon entropy of a code array, in units of ``log base``."""
    if codes.size == 0:
        return 0.0
    counts = np.bincount(codes)
    probs = counts[counts > 0] / codes.size
    return float(-(probs * (np.log(probs) / np.log(base))).sum())


def windowed_entropy(
    sequence: Sequence, window: int = 12, *, base: float = 2.0
) -> np.ndarray:
    """Entropy of every length-``window`` slice, one value per start.

    Returns an array of length ``len(sequence) - window + 1`` (empty for
    sequences shorter than the window).
    """
    if window < 1:
        raise ValueError("window must be positive")
    codes = sequence.codes
    n = codes.size - window + 1
    if n <= 0:
        return np.zeros(0, dtype=np.float64)
    out = np.empty(n, dtype=np.float64)
    # Sliding counts: O(n * alphabet) via incremental update.
    counts = np.bincount(codes[:window], minlength=sequence.alphabet.size).astype(
        np.float64
    )
    log = np.log(base)

    def entropy_of(counts_arr: np.ndarray) -> float:
        probs = counts_arr[counts_arr > 0] / window
        return float(-(probs * (np.log(probs) / log)).sum())

    out[0] = entropy_of(counts)
    for i in range(1, n):
        counts[codes[i - 1]] -= 1
        counts[codes[i + window - 1]] += 1
        out[i] = entropy_of(counts)
    return out


def low_complexity_mask(
    sequence: Sequence, window: int = 12, threshold: float = 1.5
) -> np.ndarray:
    """Boolean mask (per residue) of low-complexity regions.

    A residue is masked when *any* window covering it has entropy below
    ``threshold`` bits — the usual SEG-style smoothing.  Sequences
    shorter than the window are judged as a single block.
    """
    codes = sequence.codes
    mask = np.zeros(codes.size, dtype=bool)
    if codes.size == 0:
        return mask
    if codes.size < window:
        if shannon_entropy(codes) < threshold:
            mask[:] = True
        return mask
    entropies = windowed_entropy(sequence, window)
    low_starts = np.flatnonzero(entropies < threshold)
    for start in low_starts:
        mask[start : start + window] = True
    return mask


def mask_low_complexity(
    sequence: Sequence, window: int = 12, threshold: float = 1.5
) -> Sequence:
    """Replace low-complexity residues with the alphabet's wildcard.

    With a neutral wildcard score (the default of
    :func:`repro.scoring.match_mismatch`) masked tracts can neither win
    nor lose alignments — the standard way to keep poly-X tracts out of
    repeat calls.
    """
    wildcard = sequence.alphabet.wildcard_code
    if wildcard is None:
        raise ValueError(
            f"alphabet {sequence.alphabet.name!r} has no wildcard to mask with"
        )
    mask = low_complexity_mask(sequence, window, threshold)
    codes = sequence.codes.copy()
    codes[mask] = wildcard
    return Sequence(codes, sequence.alphabet, id=sequence.id, description=sequence.description)
