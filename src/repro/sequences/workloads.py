"""Synthetic repeat-bearing workloads.

The paper evaluates on real proteins — most prominently human titin
(34 350 residues, built from hundreds of diverged immunoglobulin and
fibronectin-III domain repeats).  Those traces are not bundled here, so
this module generates synthetic equivalents that exercise the same code
paths:

* repeats whose copies are only 10–25 % conserved (per the paper's §1),
* copies of *different lengths* through insertions and deletions,
* tandem as well as interspersed arrangements,
* a deterministic *pseudo-titin* with titin-like domain statistics
  (~95-residue units repeated back-to-back with heavy divergence).

All generators are seeded and fully deterministic so that tests and
benchmarks are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .alphabet import DNA, PROTEIN, Alphabet
from .sequence import Sequence

__all__ = [
    "RepeatSpec",
    "ImplantedRepeats",
    "random_sequence",
    "mutate",
    "implant_repeats",
    "tandem_repeat_sequence",
    "pseudo_titin",
]

# Approximate background amino-acid frequencies (Robinson & Robinson),
# indexed in PROTEIN alphabet order "ARNDCQEGHILKMFPSTWYV" (B/Z/X/* get 0).
_AA_FREQS = np.array(
    [
        0.078, 0.051, 0.045, 0.054, 0.019, 0.043, 0.063, 0.074, 0.022, 0.051,
        0.091, 0.057, 0.022, 0.039, 0.052, 0.071, 0.058, 0.013, 0.032, 0.065,
        0.0, 0.0, 0.0, 0.0,
    ]
)
_AA_FREQS /= _AA_FREQS.sum()


def _background(alphabet: Alphabet) -> np.ndarray:
    """Residue sampling distribution for ``alphabet``."""
    if alphabet.name == "protein":
        return _AA_FREQS
    # Uniform over the non-wildcard symbols.
    probs = np.ones(alphabet.size)
    wc = alphabet.wildcard_code
    if wc is not None:
        probs[wc] = 0.0
    return probs / probs.sum()


def random_sequence(
    length: int,
    alphabet: Alphabet = PROTEIN,
    *,
    seed: int | np.random.Generator = 0,
    id: str = "random",
) -> Sequence:
    """A random background sequence of ``length`` residues."""
    rng = np.random.default_rng(seed)
    codes = rng.choice(alphabet.size, size=length, p=_background(alphabet))
    return Sequence(codes.astype(np.int8), alphabet, id=id)


def mutate(
    codes: np.ndarray,
    alphabet: Alphabet,
    *,
    substitution_rate: float,
    indel_rate: float = 0.0,
    max_indel: int = 3,
    rng: np.random.Generator,
) -> np.ndarray:
    """Apply point substitutions and short indels to a code array.

    ``substitution_rate`` is the per-residue probability of replacement
    by a background-sampled residue (so the expected conservation of a
    copy is roughly ``1 - substitution_rate * (1 - 1/|alphabet|)``);
    ``indel_rate`` the per-position probability of opening an insertion
    or deletion of 1..``max_indel`` residues.
    """
    if not 0.0 <= substitution_rate <= 1.0:
        raise ValueError("substitution_rate must be within [0, 1]")
    if not 0.0 <= indel_rate <= 1.0:
        raise ValueError("indel_rate must be within [0, 1]")
    probs = _background(alphabet)
    out = np.array(codes, dtype=np.int8, copy=True)
    subs = rng.random(out.size) < substitution_rate
    if subs.any():
        out[subs] = rng.choice(alphabet.size, size=int(subs.sum()), p=probs)
    if indel_rate > 0.0:
        pieces: list[np.ndarray] = []
        pos = 0
        while pos < out.size:
            if rng.random() < indel_rate:
                size = int(rng.integers(1, max_indel + 1))
                if rng.random() < 0.5:  # deletion
                    pieces.append(out[pos : pos + 0])
                    pos += size
                else:  # insertion
                    ins = rng.choice(alphabet.size, size=size, p=probs)
                    pieces.append(ins.astype(np.int8))
            pieces.append(out[pos : pos + 1])
            pos += 1
        out = np.concatenate(pieces) if pieces else out[:0]
    return out


@dataclass(frozen=True)
class RepeatSpec:
    """Description of one implanted repeat family.

    Parameters
    ----------
    unit_length:
        Length of the ancestral repeat unit.
    copies:
        Number of diverged copies implanted.
    substitution_rate:
        Per-residue divergence of each copy (0.75–0.90 reproduces the
        paper's "only 10–25 % conserved" regime).
    indel_rate / max_indel:
        Short-indel model so copies have different lengths.
    tandem:
        If true the copies are placed back-to-back; otherwise they are
        interspersed at random positions.
    """

    unit_length: int
    copies: int
    substitution_rate: float = 0.3
    indel_rate: float = 0.0
    max_indel: int = 3
    tandem: bool = True


@dataclass(frozen=True)
class ImplantedRepeats:
    """A generated workload: the sequence plus ground-truth copy intervals."""

    sequence: Sequence
    #: Per family, the list of ``(start, end)`` half-open intervals of
    #: each implanted copy, in sequence coordinates.
    intervals: list[list[tuple[int, int]]] = field(default_factory=list)

    @property
    def total_repeat_fraction(self) -> float:
        """Fraction of residues covered by any implanted copy."""
        if len(self.sequence) == 0:
            return 0.0
        covered = np.zeros(len(self.sequence), dtype=bool)
        for family in self.intervals:
            for start, end in family:
                covered[start:end] = True
        return float(covered.mean())


def implant_repeats(
    length: int,
    specs: list[RepeatSpec] | RepeatSpec,
    alphabet: Alphabet = PROTEIN,
    *,
    seed: int = 0,
    id: str = "implanted",
) -> ImplantedRepeats:
    """Generate a background sequence with diverged repeat copies implanted.

    Copies overwrite (tandem) or are woven into (interspersed) a random
    background of approximately ``length`` residues.  The returned
    ground truth allows examples and tests to score detector output.
    """
    if isinstance(specs, RepeatSpec):
        specs = [specs]
    rng = np.random.default_rng(seed)
    probs = _background(alphabet)
    background = rng.choice(alphabet.size, size=length, p=probs).astype(np.int8)

    segments: list[np.ndarray] = [background]
    intervals: list[list[tuple[int, int]]] = []

    for spec in specs:
        unit = rng.choice(alphabet.size, size=spec.unit_length, p=probs).astype(
            np.int8
        )
        copies = [
            mutate(
                unit,
                alphabet,
                substitution_rate=spec.substitution_rate,
                indel_rate=spec.indel_rate,
                max_indel=spec.max_indel,
                rng=rng,
            )
            for _ in range(spec.copies)
        ]
        body = np.concatenate(segments)
        family: list[tuple[int, int]] = []
        if spec.tandem:
            # Overwrite a contiguous block with the copies back-to-back.
            total = sum(c.size for c in copies)
            start = int(rng.integers(0, max(body.size - total, 0) + 1))
            pieces = [body[:start]]
            pos = start
            for copy in copies:
                pieces.append(copy)
                family.append((pos, pos + copy.size))
                pos += copy.size
            pieces.append(body[start + total :])
            body = np.concatenate(pieces)
        else:
            # Intersperse: insert each copy at a random growing offset.
            for copy in copies:
                at = int(rng.integers(0, body.size + 1))
                shift = copy.size
                family = [
                    (s + shift, e + shift) if s >= at else (s, e) for s, e in family
                ]
                intervals = [
                    [(s + shift, e + shift) if s >= at else (s, e) for s, e in fam]
                    for fam in intervals
                ]
                body = np.concatenate([body[:at], copy, body[at:]])
                family.append((at, at + copy.size))
        segments = [body]
        intervals.append(sorted(family))

    seq = Sequence(segments[0], alphabet, id=id)
    return ImplantedRepeats(sequence=seq, intervals=intervals)


def tandem_repeat_sequence(
    unit: str,
    copies: int,
    alphabet: Alphabet = DNA,
    *,
    substitution_rate: float = 0.0,
    seed: int = 0,
    id: str = "tandem",
) -> Sequence:
    """An exact or diverged tandem repeat like the paper's ``ATGCATGCATGC``.

    With ``substitution_rate=0`` this is a perfect tandem repeat —
    handy for tests that need known top-alignment structure.
    """
    if copies < 1:
        raise ValueError("need at least one copy")
    rng = np.random.default_rng(seed)
    unit_codes = alphabet.encode(unit)
    parts = [
        mutate(unit_codes, alphabet, substitution_rate=substitution_rate, rng=rng)
        for _ in range(copies)
    ]
    return Sequence(np.concatenate(parts), alphabet, id=id)


def pseudo_titin(
    length: int = 34350,
    *,
    seed: int = 1912,
    domain_length: int = 95,
    substitution_rate: float = 0.78,
    id: str = "pseudo-titin",
) -> Sequence:
    """A deterministic titin-like protein of ``length`` residues.

    Human titin is essentially a chain of ~95-residue immunoglobulin and
    fibronectin-III domains whose mutual identity is far below 25 %.  We
    emulate that with two ancestral domain units repeated in an
    alternating pattern, each copy independently diverged at
    ``substitution_rate`` with light indels, then trimmed/padded to the
    requested length.  The default ``length`` matches the real protein.
    """
    rng = np.random.default_rng(seed)
    probs = _background(PROTEIN)
    ig = rng.choice(PROTEIN.size, size=domain_length, p=probs).astype(np.int8)
    fn3 = rng.choice(PROTEIN.size, size=domain_length + 7, p=probs).astype(np.int8)
    pieces: list[np.ndarray] = []
    total = 0
    toggle = 0
    while total < length:
        unit = ig if toggle == 0 else fn3
        copy = mutate(
            unit,
            PROTEIN,
            substitution_rate=substitution_rate,
            indel_rate=0.01,
            max_indel=2,
            rng=rng,
        )
        pieces.append(copy)
        total += copy.size
        toggle ^= 1
    codes = np.concatenate(pieces)[:length]
    if codes.size < length:  # pragma: no cover - trim above always suffices
        pad = rng.choice(PROTEIN.size, size=length - codes.size, p=probs)
        codes = np.concatenate([codes, pad.astype(np.int8)])
    return Sequence(codes, PROTEIN, id=id, description=f"synthetic titin len={length}")
