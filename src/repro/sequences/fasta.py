"""FASTA reading and writing.

A small, dependency-free FASTA codec sufficient for the example
applications and the benchmark harness: multi-record files, arbitrary
line wrapping, ``;`` comment lines, optional gzip transparency (by file
suffix) and round-trip fidelity of record ids/descriptions.
"""

from __future__ import annotations

import gzip
import io
import os
from typing import IO, Iterable, Iterator

from .alphabet import PROTEIN, Alphabet, alphabet_for
from .sequence import Sequence

__all__ = [
    "read_fasta",
    "iter_fasta",
    "write_fasta",
    "parse_fasta_text",
    "format_fasta",
]


def _open_text(path: str | os.PathLike, mode: str) -> IO[str]:
    path = os.fspath(path)
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t")  # type: ignore[return-value]
    return open(path, mode, encoding="ascii")


def iter_fasta(
    source: str | os.PathLike | IO[str],
    alphabet: Alphabet | str = PROTEIN,
    *,
    strict: bool = False,
) -> Iterator[Sequence]:
    """Stream :class:`Sequence` records from a FASTA file or file object.

    Unknown residue letters are mapped to the alphabet's wildcard by
    default (``strict=False``), matching common practice for real-world
    FASTA files.
    """
    if isinstance(alphabet, str):
        alphabet = alphabet_for(alphabet)
    if isinstance(source, (str, os.PathLike)):
        with _open_text(source, "r") as handle:
            yield from _parse(handle, alphabet, strict)
    else:
        yield from _parse(source, alphabet, strict)


def _parse(handle: IO[str], alphabet: Alphabet, strict: bool) -> Iterator[Sequence]:
    header: str | None = None
    chunks: list[str] = []
    for line in handle:
        line = line.rstrip()
        if not line or line.startswith(";"):
            continue
        if line.startswith(">"):
            if header is not None or chunks:
                yield _make_record(header, chunks, alphabet, strict)
            header = line[1:].strip()
            chunks = []
        else:
            chunks.append(line.replace(" ", ""))
    if header is not None or chunks:
        yield _make_record(header, chunks, alphabet, strict)


def _make_record(
    header: str | None, chunks: list[str], alphabet: Alphabet, strict: bool
) -> Sequence:
    text = "".join(chunks)
    if header is None:
        rec_id, desc = "", ""
    else:
        rec_id, _, desc = header.partition(" ")
    return Sequence(text, alphabet, id=rec_id, description=desc, strict=strict)


def read_fasta(
    source: str | os.PathLike | IO[str],
    alphabet: Alphabet | str = PROTEIN,
    *,
    strict: bool = False,
) -> list[Sequence]:
    """Read all records of a FASTA file into a list (see :func:`iter_fasta`)."""
    return list(iter_fasta(source, alphabet, strict=strict))


def parse_fasta_text(
    text: str, alphabet: Alphabet | str = PROTEIN, *, strict: bool = False
) -> list[Sequence]:
    """Parse FASTA records from an in-memory string."""
    return read_fasta(io.StringIO(text), alphabet, strict=strict)


def format_fasta(records: Iterable[Sequence] | Sequence, *, width: int = 60) -> str:
    """Render records as FASTA text with lines wrapped at ``width`` columns."""
    if isinstance(records, Sequence):
        records = [records]
    if width < 1:
        raise ValueError("width must be positive")
    out: list[str] = []
    for rec in records:
        header = rec.id
        if rec.description:
            header = f"{header} {rec.description}" if header else rec.description
        out.append(f">{header}")
        text = rec.text
        for start in range(0, max(len(text), 1), width):
            out.append(text[start : start + width])
    return "\n".join(out) + "\n"


def write_fasta(
    records: Iterable[Sequence] | Sequence,
    target: str | os.PathLike | IO[str],
    *,
    width: int = 60,
) -> None:
    """Write records to ``target`` (path or file object) as FASTA."""
    payload = format_fasta(records, width=width)
    if isinstance(target, (str, os.PathLike)):
        with _open_text(target, "w") as handle:
            handle.write(payload)
    else:
        target.write(payload)
