"""Sequence substrate: alphabets, sequences, FASTA I/O and workloads."""

from .alphabet import DNA, PROTEIN, RNA, Alphabet, alphabet_for
from .fasta import (
    format_fasta,
    iter_fasta,
    parse_fasta_text,
    read_fasta,
    write_fasta,
)
from .sequence import Sequence
from .translate import (
    GENETIC_CODE,
    reverse_complement,
    transcribe,
    translate,
)
from .stats import (
    composition,
    low_complexity_mask,
    mask_low_complexity,
    shannon_entropy,
    windowed_entropy,
)
from .workloads import (
    ImplantedRepeats,
    RepeatSpec,
    implant_repeats,
    mutate,
    pseudo_titin,
    random_sequence,
    tandem_repeat_sequence,
)

__all__ = [
    "Alphabet",
    "DNA",
    "RNA",
    "PROTEIN",
    "alphabet_for",
    "Sequence",
    "read_fasta",
    "iter_fasta",
    "write_fasta",
    "format_fasta",
    "parse_fasta_text",
    "RepeatSpec",
    "ImplantedRepeats",
    "implant_repeats",
    "mutate",
    "random_sequence",
    "tandem_repeat_sequence",
    "pseudo_titin",
    "composition",
    "shannon_entropy",
    "windowed_entropy",
    "low_complexity_mask",
    "mask_low_complexity",
    "GENETIC_CODE",
    "reverse_complement",
    "transcribe",
    "translate",
]
