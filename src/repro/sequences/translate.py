"""Nucleotide utilities: reverse complement and translation.

Repeats live at both levels — "gene duplication can take place at the
level of copying complete genomes ... down to only two or three
nucleotides" — and a codon-level tandem (CAG)n becomes a residue-level
homopolymer (poly-Q) after translation.  These utilities connect the
DNA and protein views so examples and users can analyse both.
"""

from __future__ import annotations

from .alphabet import PROTEIN, RNA
from .sequence import Sequence

__all__ = ["reverse_complement", "transcribe", "translate", "GENETIC_CODE"]

#: The standard genetic code, DNA codons -> one-letter amino acids
#: ('*' = stop).
GENETIC_CODE: dict[str, str] = {
    "TTT": "F", "TTC": "F", "TTA": "L", "TTG": "L",
    "CTT": "L", "CTC": "L", "CTA": "L", "CTG": "L",
    "ATT": "I", "ATC": "I", "ATA": "I", "ATG": "M",
    "GTT": "V", "GTC": "V", "GTA": "V", "GTG": "V",
    "TCT": "S", "TCC": "S", "TCA": "S", "TCG": "S",
    "CCT": "P", "CCC": "P", "CCA": "P", "CCG": "P",
    "ACT": "T", "ACC": "T", "ACA": "T", "ACG": "T",
    "GCT": "A", "GCC": "A", "GCA": "A", "GCG": "A",
    "TAT": "Y", "TAC": "Y", "TAA": "*", "TAG": "*",
    "CAT": "H", "CAC": "H", "CAA": "Q", "CAG": "Q",
    "AAT": "N", "AAC": "N", "AAA": "K", "AAG": "K",
    "GAT": "D", "GAC": "D", "GAA": "E", "GAG": "E",
    "TGT": "C", "TGC": "C", "TGA": "*", "TGG": "W",
    "CGT": "R", "CGC": "R", "CGA": "R", "CGG": "R",
    "AGT": "S", "AGC": "S", "AGA": "R", "AGG": "R",
    "GGT": "G", "GGC": "G", "GGA": "G", "GGG": "G",
}

_COMPLEMENT = {"A": "T", "C": "G", "G": "C", "T": "A", "N": "N"}
_RNA_COMPLEMENT = {"A": "U", "C": "G", "G": "C", "U": "A", "N": "N"}


def reverse_complement(sequence: Sequence) -> Sequence:
    """The reverse complement of a DNA or RNA sequence."""
    if sequence.alphabet.name == "dna":
        table = _COMPLEMENT
    elif sequence.alphabet.name == "rna":
        table = _RNA_COMPLEMENT
    else:
        raise ValueError(
            f"reverse complement undefined for alphabet {sequence.alphabet.name!r}"
        )
    text = "".join(table[c] for c in reversed(sequence.text))
    return Sequence(
        text, sequence.alphabet, id=sequence.id, description=sequence.description
    )


def transcribe(sequence: Sequence) -> Sequence:
    """DNA coding strand -> mRNA (T -> U)."""
    if sequence.alphabet.name != "dna":
        raise ValueError("transcription requires a DNA sequence")
    return Sequence(
        sequence.text.replace("T", "U"),
        RNA,
        id=sequence.id,
        description=sequence.description,
    )


def translate(
    sequence: Sequence,
    *,
    frame: int = 0,
    to_stop: bool = False,
) -> Sequence:
    """Translate a DNA (or RNA) sequence into protein.

    Parameters
    ----------
    frame:
        Reading-frame offset 0, 1 or 2.
    to_stop:
        Stop at the first stop codon (excluded) instead of translating
        through it as ``*``.

    Codons containing ``N`` translate to ``X``; a trailing partial
    codon is ignored.
    """
    if frame not in (0, 1, 2):
        raise ValueError("frame must be 0, 1 or 2")
    if sequence.alphabet.name == "rna":
        text = sequence.text.replace("U", "T")
    elif sequence.alphabet.name == "dna":
        text = sequence.text
    else:
        raise ValueError("translation requires a nucleotide sequence")
    residues: list[str] = []
    for at in range(frame, len(text) - 2, 3):
        codon = text[at : at + 3]
        aa = GENETIC_CODE.get(codon, "X")
        if aa == "*" and to_stop:
            break
        residues.append(aa)
    return Sequence(
        "".join(residues),
        PROTEIN,
        id=sequence.id,
        description=f"translated frame {frame}",
    )
