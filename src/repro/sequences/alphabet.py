"""Biological alphabets and their integer encodings.

Alignment engines operate on sequences encoded as small non-negative
integers (``numpy.int8`` codes) so that exchange-matrix lookups become
plain array indexing — the same trick the paper's C implementation uses
to feed amino-acid codes into its SSE kernels.

Three standard alphabets are provided (:data:`DNA`, :data:`RNA`,
:data:`PROTEIN`) plus a factory for custom ones.  Every alphabet knows
how to encode text to codes and decode codes back to text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = [
    "Alphabet",
    "DNA",
    "RNA",
    "PROTEIN",
    "alphabet_for",
]


@dataclass(frozen=True)
class Alphabet:
    """An ordered set of residue symbols with a dense integer encoding.

    Parameters
    ----------
    name:
        Human-readable identifier (``"dna"``, ``"protein"``, ...).
    symbols:
        The canonical residue letters, in code order: the symbol at
        index *i* is encoded as the integer *i*.
    wildcard:
        Optional symbol that unknown letters are mapped to when
        encoding with ``strict=False`` (e.g. ``"N"`` for DNA,
        ``"X"`` for protein).
    """

    name: str
    symbols: str
    wildcard: str | None = None
    _lookup: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(set(self.symbols)) != len(self.symbols):
            raise ValueError(f"duplicate symbols in alphabet {self.name!r}")
        if self.wildcard is not None and self.wildcard not in self.symbols:
            raise ValueError(
                f"wildcard {self.wildcard!r} not part of alphabet {self.name!r}"
            )
        # Build a 256-entry ASCII lookup table; -1 marks invalid letters.
        table = np.full(256, -1, dtype=np.int16)
        for code, sym in enumerate(self.symbols):
            table[ord(sym)] = code
            table[ord(sym.lower())] = code
        object.__setattr__(self, "_lookup", table)

    def __len__(self) -> int:
        return len(self.symbols)

    @property
    def size(self) -> int:
        """Number of symbols (and the dimension of matching exchange matrices)."""
        return len(self.symbols)

    @property
    def wildcard_code(self) -> int | None:
        """Integer code of the wildcard symbol, or ``None``."""
        if self.wildcard is None:
            return None
        return self.symbols.index(self.wildcard)

    def code_of(self, symbol: str) -> int:
        """Return the integer code of a single residue ``symbol``.

        Raises :class:`KeyError` for letters outside the alphabet.
        """
        code = int(self._lookup[ord(symbol)]) if len(symbol) == 1 else -1
        if code < 0:
            raise KeyError(f"{symbol!r} is not in alphabet {self.name!r}")
        return code

    def encode(self, text: str | bytes, *, strict: bool = True) -> np.ndarray:
        """Encode ``text`` into an ``int8`` code array.

        With ``strict=True`` (default) any letter outside the alphabet
        raises :class:`ValueError`.  With ``strict=False`` unknown
        letters become the wildcard code (requires a wildcard).
        """
        if isinstance(text, str):
            raw = text.encode("ascii")
        else:
            raw = bytes(text)
        codes = self._lookup[np.frombuffer(raw, dtype=np.uint8)]
        bad = codes < 0
        if bad.any():
            if strict or self.wildcard is None:
                pos = int(np.flatnonzero(bad)[0])
                raise ValueError(
                    f"invalid symbol {chr(raw[pos])!r} at position {pos} "
                    f"for alphabet {self.name!r}"
                )
            codes = codes.copy()
            codes[bad] = self.wildcard_code
        return codes.astype(np.int8)

    def decode(self, codes: Iterable[int] | np.ndarray) -> str:
        """Decode an iterable of integer codes back into a string."""
        arr = np.asarray(codes, dtype=np.int64)
        if arr.size == 0:
            return ""
        if arr.min() < 0 or arr.max() >= self.size:
            raise ValueError(
                f"code out of range for alphabet {self.name!r} "
                f"(valid range 0..{self.size - 1})"
            )
        syms = np.frombuffer(self.symbols.encode("ascii"), dtype=np.uint8)
        return syms[arr].tobytes().decode("ascii")

    def is_valid(self, text: str) -> bool:
        """Whether every letter of ``text`` belongs to the alphabet."""
        try:
            self.encode(text, strict=True)
        except ValueError:
            return False
        return True


#: Nucleotide alphabet for DNA.  ``N`` is the unknown-base wildcard.
DNA = Alphabet("dna", "ACGTN", wildcard="N")

#: Nucleotide alphabet for RNA.
RNA = Alphabet("rna", "ACGUN", wildcard="N")

#: The 20 standard amino acids in the conventional one-letter order used
#: by BLOSUM/PAM tables, plus ``B`` (Asx), ``Z`` (Glx), ``X`` (unknown)
#: and ``*`` (stop) so that published 24x24 exchange matrices apply
#: without remapping.
PROTEIN = Alphabet("protein", "ARNDCQEGHILKMFPSTWYVBZX*", wildcard="X")

_REGISTRY = {a.name: a for a in (DNA, RNA, PROTEIN)}


def alphabet_for(name: str) -> Alphabet:
    """Look up a built-in alphabet by name (``"dna"``, ``"rna"``, ``"protein"``)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown alphabet {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
