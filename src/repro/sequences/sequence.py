"""The :class:`Sequence` value type.

A :class:`Sequence` pairs an immutable ``int8`` code array with the
:class:`~repro.sequences.alphabet.Alphabet` it was encoded under.  All
higher layers (alignment engines, the top-alignment driver, the repeat
delineator) operate on these code arrays; text only appears at the I/O
boundary.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .alphabet import PROTEIN, Alphabet, alphabet_for

__all__ = ["Sequence"]


class Sequence:
    """An immutable biological sequence with identifier and description.

    Instances behave like read-only sequences of residue letters: they
    support ``len``, indexing, slicing (returning a new
    :class:`Sequence`), equality, hashing and iteration.

    Parameters
    ----------
    data:
        Residue letters (``str``) or pre-encoded codes (``numpy`` int
        array).
    alphabet:
        The alphabet to encode/interpret under; an
        :class:`~repro.sequences.alphabet.Alphabet` or a built-in name.
    id:
        Record identifier (FASTA header token).
    description:
        Free-text description (rest of the FASTA header).
    strict:
        Passed to :meth:`Alphabet.encode` when ``data`` is text.
    """

    __slots__ = ("_codes", "_alphabet", "id", "description")

    def __init__(
        self,
        data: str | bytes | np.ndarray,
        alphabet: Alphabet | str = PROTEIN,
        *,
        id: str = "",
        description: str = "",
        strict: bool = True,
    ) -> None:
        if isinstance(alphabet, str):
            alphabet = alphabet_for(alphabet)
        if isinstance(data, (str, bytes)):
            codes = alphabet.encode(data, strict=strict)
        else:
            codes = np.asarray(data)
            if codes.ndim != 1:
                raise ValueError("sequence codes must be one-dimensional")
            if codes.size and (codes.min() < 0 or codes.max() >= alphabet.size):
                raise ValueError(
                    f"codes out of range 0..{alphabet.size - 1} "
                    f"for alphabet {alphabet.name!r}"
                )
            codes = codes.astype(np.int8)
        codes.setflags(write=False)
        self._codes = codes
        self._alphabet = alphabet
        self.id = id
        self.description = description

    # -- core accessors -------------------------------------------------

    @property
    def codes(self) -> np.ndarray:
        """The read-only ``int8`` code array."""
        return self._codes

    @property
    def alphabet(self) -> Alphabet:
        """The alphabet this sequence is encoded under."""
        return self._alphabet

    @property
    def text(self) -> str:
        """The sequence as a residue-letter string."""
        return self._alphabet.decode(self._codes)

    # -- container protocol ---------------------------------------------

    def __len__(self) -> int:
        return self._codes.size

    def __iter__(self) -> Iterator[str]:
        return iter(self.text)

    def __getitem__(self, index: int | slice) -> "Sequence | str":
        if isinstance(index, slice):
            return Sequence(
                self._codes[index],
                self._alphabet,
                id=self.id,
                description=self.description,
            )
        return self._alphabet.decode([int(self._codes[index])])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Sequence):
            return (
                self._alphabet.name == other._alphabet.name
                and np.array_equal(self._codes, other._codes)
            )
        if isinstance(other, str):
            return self.text == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._alphabet.name, self._codes.tobytes()))

    def __repr__(self) -> str:
        preview = self.text if len(self) <= 24 else self.text[:21] + "..."
        name = f" id={self.id!r}" if self.id else ""
        return f"Sequence({preview!r}, {self._alphabet.name}{name}, len={len(self)})"

    # -- convenience ----------------------------------------------------

    def prefix(self, r: int) -> "Sequence":
        """The split prefix ``S[1:r]`` (1-based, inclusive) of the paper's §3."""
        if not 1 <= r < len(self):
            raise ValueError(f"split point r={r} outside 1..{len(self) - 1}")
        return self[:r]

    def suffix(self, r: int) -> "Sequence":
        """The split suffix ``S[r+1:m]`` (1-based, inclusive) of the paper's §3."""
        if not 1 <= r < len(self):
            raise ValueError(f"split point r={r} outside 1..{len(self) - 1}")
        return self[r:]

    def reversed(self) -> "Sequence":
        """A new sequence with the residues in reverse order."""
        return Sequence(
            self._codes[::-1].copy(),
            self._alphabet,
            id=self.id,
            description=self.description,
        )
