#!/usr/bin/env python
"""Gateway smoke test: multi-tenant admission, fair share, clean drain.

Two phases, both running real subprocesses on loopback:

**Tenant service drill** — ``repro serve --tenants`` with one worker
and a dispatch window of 1, so fair share is observable:

* anonymous and wrong-key requests are rejected (401) while
  ``/healthz`` and ``/metrics`` stay open;
* a rate-capped tenant's second submission sheds with ``429`` and a
  ``Retry-After`` that, once honored, admits the retry;
* a duplicate ``POST /jobs`` with the same ``Idempotency-Key`` replays
  the original job — byte-identical job id, no second record;
* a light tenant (weight 4) submitting *behind* a saturating heavy
  tenant (weight 1, 8 queued jobs) completes while most of the heavy
  backlog is still pending — deficit-round-robin overtakes arrival
  order;
* SIGHUP hot-reloads the tenant file (a tenant added mid-flight can
  submit) and ``/metrics`` carries per-tenant gateway families;
* SIGTERM shuts the service down cleanly.

**Cluster drain drill** — a coordinator plus a slow node holding a
shard lease: SIGTERM makes the node finish its shard, say goodbye and
exit 0; a late-joining peer completes the scan **bit-identical** to
the single-node scanner with zero leases reassigned — drain is not
failover.

Exits non-zero on any failure, so CI can run it directly::

    python examples/gateway_smoke.py --log-dir gateway-logs
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.cluster import ClusterClient
from repro.cluster.protocol import report_to_dict
from repro.core.scan import DatabaseScanner
from repro.sequences import Sequence, pseudo_titin
from repro.service import (
    ClientBacklogFull,
    JobSpec,
    ServiceAuthError,
    ServiceClient,
)
from repro.service.workers import build_finder

TENANTS = {
    "tenants": {
        "heavy": {"api_key": "smoke-heavy-key", "weight": 1},
        "light": {"api_key": "smoke-light-key", "weight": 4},
        "capped": {"api_key": "smoke-capped-key", "rate": 1, "burst": 1},
    }
}

RECORDS = [
    {"id": f"rec{i:02d}", "sequence": pseudo_titin(55 + 4 * i, seed=i).text}
    for i in range(6)
]
SCAN_SPEC = {"sequence": "AA", "alphabet": "protein", "top_alignments": 3}


def _spec(seed: int) -> dict:
    return {"sequence": pseudo_titin(70, seed=seed).text, "top_alignments": 3}


def _spawn(cmd: list[str], log_path: Path, **env_extra) -> subprocess.Popen:
    env = dict(os.environ)
    env.update(env_extra)
    log = open(log_path, "w")  # noqa: SIM115 - lives as long as the process
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *cmd],
        stdout=log,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def _await_banner(proc: subprocess.Popen, log_path: Path, banner: str) -> str:
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        text = log_path.read_text() if log_path.exists() else ""
        for line in text.splitlines():
            if banner in line:
                return line.split(banner, 1)[1].split()[0]
        if proc.poll() is not None:
            raise RuntimeError(f"process exited {proc.returncode}: {text}")
        time.sleep(0.1)
    proc.kill()
    raise RuntimeError(f"no {banner!r} banner in {log_path}")


def _stop(procs: list[subprocess.Popen]) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
    for proc in procs:
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


def _client(url: str, key: str | None) -> ServiceClient:
    # submit_attempts=1 so 429s surface instead of being retried away.
    return ServiceClient(url, timeout=30, api_key=key, submit_attempts=1)


def _gateway_stats(url: str) -> dict:
    with urllib.request.urlopen(f"{url}/stats", timeout=10) as resp:
        return json.load(resp)["gateway"]


def check_auth(url: str) -> None:
    anonymous = _client(url, None)
    assert anonymous.healthz() == {"ok": True}, "/healthz must stay open"
    for key, expect in ((None, 401), ("wrong-key", 401)):
        try:
            _client(url, key).submit(_spec(seed=1))
        except ServiceAuthError as exc:
            assert exc.code == expect, exc
        else:
            raise AssertionError(f"key {key!r} was not rejected")
    print("auth: anonymous and wrong-key submissions rejected (401)")


def check_rate_quota(url: str) -> None:
    capped = _client(url, "smoke-capped-key")
    capped.submit(_spec(seed=2))
    try:
        capped.submit(_spec(seed=3))
    except ClientBacklogFull as exc:
        retry_after = exc.retry_after
    else:
        raise AssertionError("second submission was not rate-shed")
    assert retry_after >= 1, retry_after
    time.sleep(retry_after)  # honor the hint...
    record = capped.submit(_spec(seed=3))  # ...and the retry is admitted
    assert record["state"] in ("queued", "done"), record
    print(f"quota: 429 with Retry-After {retry_after}s, honored retry admitted")


def check_idempotency(url: str) -> None:
    heavy = _client(url, "smoke-heavy-key")
    first = heavy.submit(_spec(seed=4), idempotency_key="smoke-batch-1")
    assert not first["replayed"], first
    again = heavy.submit(_spec(seed=4), idempotency_key="smoke-batch-1")
    assert again["replayed"], again
    assert again["id"] == first["id"], (
        f"replay returned a different job: {again['id']} != {first['id']}"
    )
    print(f"idempotency: duplicate POST replayed job {first['id']} byte-identical")


def check_fair_share(url: str) -> None:
    heavy = _client(url, "smoke-heavy-key")
    light = _client(url, "smoke-light-key")
    heavy_ids = [heavy.submit(_spec(seed=10 + i))["id"] for i in range(8)]
    light_record = light.submit(_spec(seed=9))
    done = light.wait(light_record["id"], timeout=120)
    assert done["state"] == "done", done
    pending = [
        jid for jid in heavy_ids
        if heavy.status(jid)["state"] not in ("done", "failed", "cancelled")
    ]
    assert len(pending) >= 4, (
        f"light tenant finished with only {len(pending)}/8 heavy jobs "
        "pending — fair share did not overtake the backlog"
    )
    print(
        f"fair share: light job done while {len(pending)}/8 heavy jobs "
        "still pending (weight 4 vs 1)"
    )
    for jid in heavy_ids:  # drain the backlog before shutdown
        heavy.wait(jid, timeout=300)


def check_sighup_reload(url: str, proc: subprocess.Popen, tenants_file: Path) -> None:
    config = json.loads(tenants_file.read_text(encoding="utf-8"))
    config["tenants"]["fresh"] = {"api_key": "smoke-fresh-key"}
    tenants_file.write_text(json.dumps(config), encoding="utf-8")
    proc.send_signal(signal.SIGHUP)
    deadline = time.monotonic() + 15
    while _gateway_stats(url)["config_reloads"] < 1:
        if time.monotonic() > deadline:
            raise AssertionError("SIGHUP reload never landed")
        time.sleep(0.1)
    record = _client(url, "smoke-fresh-key").submit(_spec(seed=5))
    assert record["state"] in ("queued", "done"), record
    print("reload: SIGHUP picked up a new tenant without a restart")


def check_metrics(url: str) -> None:
    with urllib.request.urlopen(f"{url}/metrics", timeout=10) as resp:
        text = resp.read().decode("utf-8")
    required = (
        'repro_gateway_admissions_total{route="spool",tenant="heavy"}',
        'repro_gateway_admissions_total{route="replay",tenant="heavy"}',
        'repro_gateway_rejections_total{reason="rate",tenant="capped"}',
        'repro_gateway_grants_total{tenant="light"}',
        'repro_gateway_lane_depth{tenant="heavy"}',
        "repro_gateway_config_reloads 1",
        'repro_service_tenant_jobs{state="done",tenant="light"}',
    )
    for needle in required:
        assert needle in text, f"/metrics missing {needle}"
    print(f"metrics: per-tenant gateway families present ({len(required)} checked)")


def phase_tenant_service(log_dir: Path, data_dir: Path, tenants_file: Path) -> None:
    tenants_file.write_text(json.dumps(TENANTS), encoding="utf-8")
    serve_log = log_dir / "serve.log"
    proc = _spawn(
        [
            "serve",
            "--port", "0",
            "--workers", "1",
            "--queue-capacity", "32",
            "--data-dir", str(data_dir),
            "--tenants", str(tenants_file),
            "--dispatch-window", "1",
        ],
        serve_log,
        # Slow every job down so the heavy backlog is still pending
        # when the light tenant's job completes.
        REPRO_SERVICE_CHUNK_DELAY="0.05",
    )
    try:
        url = _await_banner(proc, serve_log, "repro service listening on")
        banner = serve_log.read_text()
        assert "tenants=capped,heavy,light" in banner, banner
        check_auth(url)
        check_rate_quota(url)
        check_idempotency(url)
        check_fair_share(url)
        check_sighup_reload(url, proc, tenants_file)
        check_metrics(url)
    finally:
        _stop([proc])
    tail = serve_log.read_text()
    assert proc.returncode == 0, f"service exited {proc.returncode}: {tail}"
    assert "repro service stopped" in tail, tail
    print("service shut down cleanly")


def _canon_local_scan() -> str:
    scanner = DatabaseScanner(finder=build_finder(JobSpec.from_dict(SCAN_SPEC)))
    sequences = [
        Sequence(rec["sequence"], "protein", id=rec["id"]) for rec in RECORDS
    ]
    return json.dumps(
        [report_to_dict(r) for r in scanner.scan(sequences)], sort_keys=True
    )


def phase_cluster_drain(log_dir: Path) -> None:
    """SIGTERM a node mid-lease: shard finishes, goodbye sent, exit 0."""
    coordinator = _spawn(
        [
            "cluster", "coordinator",
            "--port", "0",
            "--scan-shard-size", "1",
            "--node-timeout", "10",
        ],
        log_dir / "coordinator.log",
    )
    roller = None
    closer = None
    try:
        address = _await_banner(
            coordinator, log_dir / "coordinator.log",
            "repro cluster coordinator listening on",
        )
        host, _, port = address.rpartition(":")
        # The roller sleeps 1s holding each lease, so SIGTERM lands
        # mid-shard deterministically — drain must finish that shard.
        roller = _spawn(
            ["cluster", "node", "--join", address, "--node-id", "roller"],
            log_dir / "node-roller.log",
            REPRO_CLUSTER_SHARD_DELAY="1.0",
        )
        with ClusterClient(host, int(port)) as client:
            deadline = time.monotonic() + 30
            while client.stats()["nodes_alive"] < 1:
                if time.monotonic() > deadline:
                    raise RuntimeError("roller never registered")
                time.sleep(0.1)
            job_id = client.submit_scan(JobSpec.from_dict(SCAN_SPEC), RECORDS)
            while client.job_status(job_id)["in_flight"] == 0:
                if time.monotonic() > deadline:
                    raise RuntimeError("roller never took a lease")
                time.sleep(0.1)
            roller.send_signal(signal.SIGTERM)  # mid-shard, not mid-frame
            code = roller.wait(timeout=60)
            assert code == 0, f"drained node exited {code}"
            drain_deadline = time.monotonic() + 15
            while client.stats()["nodes_drained"] < 1:
                if time.monotonic() > drain_deadline:
                    raise AssertionError("goodbye never reached the coordinator")
                time.sleep(0.1)
            print("drain: SIGTERM node finished its shard, said goodbye, exited 0")
            closer = _spawn(
                ["cluster", "node", "--join", address, "--node-id", "closer"],
                log_dir / "node-closer.log",
            )
            reports = client.wait_scan(job_id, timeout=300.0)
            assert json.dumps(reports, sort_keys=True) == _canon_local_scan(), (
                "post-drain scan diverged from the single-node scanner"
            )
            status = client.job_status(job_id)
            released = status["scheduler"]["leases_released"]
            assert released == 0, (
                f"{released} lease(s) reassigned — drain fell back to failover"
            )
            stats = client.stats()
            assert stats["nodes"]["roller"]["drained"] is True, stats["nodes"]
            assert stats["autoscale"]["queue_depth"] == 0, stats["autoscale"]
            print(
                "drain: scan bit-identical to the single-node scanner, "
                "zero leases reassigned"
            )
    finally:
        _stop([p for p in (roller, closer) if p is not None])
        _stop([coordinator])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--log-dir",
        default=None,
        help="directory for service/coordinator/node logs (CI artifacts)",
    )
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="repro-gateway-smoke-") as tmp:
        log_dir = Path(args.log_dir) if args.log_dir else Path(tmp) / "logs"
        log_dir.mkdir(parents=True, exist_ok=True)
        phase_tenant_service(
            log_dir, Path(tmp) / "data", Path(tmp) / "tenants.json"
        )
        phase_cluster_drain(log_dir)
    print("gateway smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
