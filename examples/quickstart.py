#!/usr/bin/env python
"""Quickstart: detect internal repeats in a sequence.

Runs the paper's Figure 4 walk-through (ATGCATGCATGC) and a small
protein example end to end, printing top alignments and the delineated
repeat copies.

Usage::

    python examples/quickstart.py
"""

from repro import find_repeats, tandem_repeat_sequence
from repro.align import AlignmentProblem, full_matrix, render_alignment, traceback
from repro.scoring import GapPenalties, match_mismatch
from repro.sequences import DNA


def dna_walkthrough() -> None:
    """Figure 4: three nonoverlapping top alignments of ATGCATGCATGC."""
    seq = tandem_repeat_sequence("ATGC", 3)
    print(f"sequence: {seq.text}")

    result = find_repeats(seq, top_alignments=3)
    for aln in result.top_alignments:
        prefix = f"{aln.prefix_interval[0]}-{aln.prefix_interval[1]}"
        suffix = f"{aln.suffix_interval[0]}-{aln.suffix_interval[1]}"
        print(
            f"  top alignment {aln.index + 1}: split r={aln.r}, score {aln.score:g}, "
            f"residues {prefix} matched to {suffix}"
        )
    for rep in result.repeats:
        spans = ", ".join(f"{s}..{e}" for s, e in rep.copies)
        print(f"  repeat family {rep.family}: {rep.n_copies} copies at {spans}")


def worked_alignment() -> None:
    """§2.1's worked example: align CTTACAGA against ATTGCGA."""
    exchange = match_mismatch(DNA, 2.0, -1.0)
    gaps = GapPenalties(2.0, 1.0)
    problem = AlignmentProblem.from_sequences("ATTGCGA", "CTTACAGA", exchange, gaps)
    matrix = full_matrix(problem)
    import numpy as np

    end = np.unravel_index(np.argmax(matrix), matrix.shape)
    path = traceback(problem, matrix, int(end[0]), int(end[1]))
    top, mid, bot = render_alignment(problem, path)
    print(f"\nlocal alignment of ATTGCGA vs CTTACAGA (score {path.score:g}):")
    for line in (top, mid, bot):
        print(f"  {line}")


def protein_example() -> None:
    """A short protein with an obvious internal duplication."""
    seq = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQMKTAYIAKQRQISFVKSHFSRQ"
    result = find_repeats(seq, top_alignments=5, max_gap=1)
    print(f"\nprotein ({len(seq)} aa): best alignment score "
          f"{result.top_alignments[0].score:g}")
    for rep in result.repeats:
        spans = ", ".join(f"{s}..{e}" for s, e in rep.copies)
        print(
            f"  family {rep.family}: {rep.n_copies} copies "
            f"(~{rep.unit_length:.0f} aa each) at {spans}"
        )
    print(f"  alignments computed: {result.stats.alignments}, "
          f"realignments: {result.stats.realignments}")


if __name__ == "__main__":
    dna_walkthrough()
    worked_alignment()
    protein_example()
