#!/usr/bin/env python
"""Cluster smoke test: coordinator + 3 nodes, sharded scan, SIGKILL failover.

Everything runs as real subprocesses on loopback, the way an operator
would run it:

* ``repro serve --cluster-port 0`` — the service with an attached
  coordinator — plus three ``repro cluster node`` workers;
* a sharded multi-record scan through :class:`ClusterClient` must be
  **bit-identical** (JSON byte equality) to the single-process
  :class:`DatabaseScanner` over the same records;
* ``POST /jobs`` on the service routes cluster-wide (the ``queued``
  event carries ``route=cluster``) and the result matches an
  in-process library run;
* ``GET /metrics`` exposes ``repro_cluster_*`` families and shows at
  least 3 registered nodes;
* a standalone ``repro cluster coordinator`` then runs the failover
  drill: a node is SIGKILLed while holding a shard lease and the scan
  still completes bit-identical once its lease is reassigned.

Node/coordinator output lands in ``--log-dir`` so CI can upload the
logs as artifacts.  Exits non-zero on any failure::

    python examples/cluster_smoke.py --log-dir cluster-logs
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.cluster import ClusterClient
from repro.cluster.execution import index_config_from_options
from repro.cluster.protocol import report_to_dict
from repro.core.scan import DatabaseScanner
from repro.sequences import Sequence, pseudo_titin
from repro.service import JobSpec, ServiceClient
from repro.service.workers import build_finder

RECORDS = [
    {"id": f"rec{i:02d}", "sequence": pseudo_titin(60 + 5 * i, seed=i).text}
    for i in range(8)
]
SPEC = {"sequence": "AA", "alphabet": "protein", "top_alignments": 3}


def _local_reports(options: dict) -> list[dict]:
    scanner = DatabaseScanner(
        finder=build_finder(JobSpec.from_dict(SPEC)),
        index=index_config_from_options(options),
    )
    sequences = [
        Sequence(rec["sequence"], "protein", id=rec["id"]) for rec in RECORDS
    ]
    return [report_to_dict(r) for r in scanner.scan(sequences)]


def _canon(reports: list[dict]) -> str:
    return json.dumps(reports, sort_keys=True)


def _spawn(cmd: list[str], log_path: Path, **env_extra) -> subprocess.Popen:
    env = dict(os.environ)
    env.update(env_extra)
    log = open(log_path, "w")  # noqa: SIM115 - lives as long as the process
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *cmd],
        stdout=log,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def _spawn_banner(cmd: list[str], log_path: Path, banner: str) -> tuple[subprocess.Popen, str]:
    """Spawn, tail the log until ``banner`` appears, return its tail."""
    proc = _spawn(cmd, log_path)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        text = log_path.read_text() if log_path.exists() else ""
        for line in text.splitlines():
            if banner in line:
                return proc, line.split(banner, 1)[1].strip()
        if proc.poll() is not None:
            raise RuntimeError(f"{cmd} exited {proc.returncode}: {text}")
        time.sleep(0.1)
    proc.kill()
    raise RuntimeError(f"no {banner!r} banner in {log_path}")


def _wait_nodes(client: ClusterClient, count: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.stats()["nodes_alive"] >= count:
            return
        time.sleep(0.1)
    raise RuntimeError(f"never saw {count} alive nodes")


def _split_address(address: str) -> tuple[str, int]:
    host, _, port = address.rpartition(":")
    return host, int(port)


def _stop(procs: list[subprocess.Popen]) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
    for proc in procs:
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


def phase_service_cluster(log_dir: Path, data_dir: Path, options: dict) -> None:
    """Service + coordinator + 3 nodes: scan, routing, metrics."""
    serve_log = log_dir / "serve.log"
    proc, cluster_address = _spawn_banner(
        [
            "serve",
            "--port", "0",
            "--workers", "0",
            "--cluster-port", "0",
            "--data-dir", str(data_dir),
        ],
        serve_log,
        "repro cluster coordinator listening on",
    )
    nodes: list[subprocess.Popen] = []
    try:
        _, http_url = _spawn_banner_from_existing(serve_log, proc)
        host, cluster_port = _split_address(cluster_address)
        for i in range(3):
            nodes.append(
                _spawn(
                    ["cluster", "node", "--join", cluster_address,
                     "--node-id", f"smoke-{i}"],
                    log_dir / f"node-{i}.log",
                )
            )
        with ClusterClient(host, cluster_port) as cluster_client:
            _wait_nodes(cluster_client, 3)
            print(f"3 nodes joined {cluster_address}")

            reports = cluster_client.scan(
                JobSpec.from_dict(SPEC), RECORDS, timeout=300.0, options=options
            )
            assert _canon(reports) == _canon(_local_reports(options)), (
                "sharded scan diverged from the single-node scanner"
            )
            if options.get("index"):
                routes = [rep["routed"] for rep in reports]
                assert all(r in ("skip", "defer", "full") for r in routes), routes
                print(
                    f"sharded scan over {len(RECORDS)} records: bit-identical "
                    f"(index routing: {routes.count('full')} full / "
                    f"{routes.count('defer')} defer / {routes.count('skip')} skip)"
                )
            else:
                print(f"sharded scan over {len(RECORDS)} records: bit-identical")

            service = ServiceClient(http_url, timeout=30)
            payload = {
                "sequence": pseudo_titin(90, seed=3).text,
                "top_alignments": 4,
            }
            record = service.submit(payload)
            done = service.wait(record["id"], timeout=300)
            assert done["state"] == "done", done
            queued = [
                e for e in service.events(record["id"]) if e["event"] == "queued"
            ]
            assert queued and queued[0].get("route") == "cluster", (
                "submission did not route to the cluster"
            )
            spec = JobSpec.from_dict(payload)
            expected = build_finder(spec).find(
                Sequence(spec.normalized_sequence(), "protein")
            )
            fetched = service.result(done["id"])
            got = [(a["r"], a["score"]) for a in fetched["top_alignments"]]
            want = [(a.r, a.score) for a in expected.top_alignments]
            assert got == want, f"cluster job diverged: {got} != {want}"
            print("POST /jobs routed cluster-wide, result identical to library run")

            with urllib.request.urlopen(f"{http_url}/metrics", timeout=10) as resp:
                text = resp.read().decode("utf-8")
            samples = {
                line.split("{", 1)[0].split(" ", 1)[0]: float(line.rsplit(" ", 1)[1])
                for line in text.splitlines()
                if line and not line.startswith("#")
            }
            assert samples.get("repro_cluster_nodes_registered", 0) >= 3, (
                f"/metrics shows {samples.get('repro_cluster_nodes_registered')} "
                "registered nodes, expected >= 3"
            )
            for family in (
                "repro_cluster_leases_issued_total",
                "repro_cluster_shard_seconds_count",
                "repro_service_queue_depth",
            ):
                assert family in samples, f"/metrics missing {family}"
            print(f"/metrics: {samples['repro_cluster_nodes_registered']:.0f} nodes registered, cluster families present")
    finally:
        _stop(nodes)
        _stop([proc])
    tail = serve_log.read_text()
    assert "repro service stopped" in tail, tail
    print("service + coordinator shut down cleanly")


def _spawn_banner_from_existing(
    log_path: Path, proc: subprocess.Popen
) -> tuple[subprocess.Popen, str]:
    """The serve log carries a second banner: the HTTP listening line."""
    deadline = time.monotonic() + 30
    banner = "repro service listening on"
    while time.monotonic() < deadline:
        for line in log_path.read_text().splitlines():
            if banner in line:
                return proc, line.split(banner, 1)[1].split()[0]
        if proc.poll() is not None:
            raise RuntimeError(f"serve exited {proc.returncode}")
        time.sleep(0.1)
    raise RuntimeError("service HTTP banner never appeared")


def phase_failover(log_dir: Path, options: dict) -> None:
    """SIGKILL a node mid-lease: the scan must still be bit-identical."""
    coordinator, address = _spawn_banner(
        [
            "cluster", "coordinator",
            "--port", "0",
            "--scan-shard-size", "1",
            "--node-timeout", "2",
        ],
        log_dir / "coordinator.log",
        "repro cluster coordinator listening on",
    )
    host, port = _split_address(address)
    victim = None
    survivors: list[subprocess.Popen] = []
    try:
        # The victim sleeps 30s while *holding* each lease — it can
        # never finish a shard, so its work must be reassigned.
        victim = _spawn(
            ["cluster", "node", "--join", address, "--node-id", "victim"],
            log_dir / "node-victim.log",
            REPRO_CLUSTER_SHARD_DELAY="30",
        )
        with ClusterClient(host, port) as client:
            _wait_nodes(client, 1)
            job_id = client.submit_scan(
                JobSpec.from_dict(SPEC), RECORDS, options=options
            )
            deadline = time.monotonic() + 30
            while client.job_status(job_id)["in_flight"] == 0:
                if time.monotonic() > deadline:
                    raise RuntimeError("victim never took a lease")
                time.sleep(0.1)
            victim.kill()  # SIGKILL mid-shard: no goodbye, no cleanup
            victim.wait(timeout=10)
            print("victim node SIGKILLed while holding a shard lease")
            for i in range(2):
                survivors.append(
                    _spawn(
                        ["cluster", "node", "--join", address,
                         "--node-id", f"survivor-{i}"],
                        log_dir / f"node-survivor-{i}.log",
                    )
                )
            reports = client.wait_scan(job_id, timeout=300.0)
            assert _canon(reports) == _canon(_local_reports(options)), (
                "post-failover scan diverged from the single-node scanner"
            )
            stats = client.stats()
            assert stats["nodes"]["victim"]["alive"] is False
            released = client.job_status(job_id)["scheduler"]["leases_released"]
            assert released >= 1, "the victim's lease was never reassigned"
            print(
                f"scan completed bit-identical after failover "
                f"({released} lease(s) reassigned)"
            )
    finally:
        _stop([p for p in ([victim] + survivors) if p is not None])
        _stop([coordinator])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--log-dir",
        default=None,
        help="directory for coordinator/node logs (CI artifacts)",
    )
    parser.add_argument(
        "--index",
        action="store_true",
        help="run the sharded scans through the k-mer index tier "
        "(promise-ordered leases; bit-identity asserted against an "
        "indexed local scanner)",
    )
    args = parser.parse_args(argv)
    options = {"index": True} if args.index else {}
    with tempfile.TemporaryDirectory(prefix="repro-cluster-smoke-") as tmp:
        log_dir = Path(args.log_dir) if args.log_dir else Path(tmp) / "logs"
        log_dir.mkdir(parents=True, exist_ok=True)
        phase_service_cluster(log_dir, Path(tmp) / "data", options)
        phase_failover(log_dir, options)
    print("cluster smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
