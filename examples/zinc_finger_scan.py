#!/usr/bin/env python
"""Scan a zinc-finger-like protein and write annotated FASTA output.

C2H2 zinc fingers are the classic interspersed protein repeat: ~28-aa
units with a conserved C..C...H..H skeleton, repeated many times with
heavy divergence in between — exactly the "only 10–25 % of the amino
acids ... conserved" regime of the paper's introduction.  This example

* builds a synthetic multi-finger protein around the canonical motif,
* detects the fingers with the top-alignment method,
* prints one rendered alignment the way the paper's §2.1 does, and
* round-trips everything through FASTA.

Usage::

    python examples/zinc_finger_scan.py
"""

import io

import numpy as np

from repro import find_repeats
from repro.align import AlignmentProblem, full_matrix, render_alignment, traceback
from repro.scoring import GapPenalties, blosum62
from repro.sequences import PROTEIN, Sequence, mutate, read_fasta, write_fasta

#: The canonical C2H2 zinc-finger consensus (28 residues).
C2H2 = "PYKCPECGKSFSQSSNLQKHQRTHTGEK"


def build_protein(fingers: int = 6, seed: int = 11) -> Sequence:
    """A protein of diverged C2H2 fingers separated by random linkers."""
    rng = np.random.default_rng(seed)
    pieces = []
    consensus = PROTEIN.encode(C2H2)
    for _ in range(fingers):
        finger = mutate(
            consensus, PROTEIN, substitution_rate=0.35, indel_rate=0.01, rng=rng
        )
        linker = rng.choice(20, size=rng.integers(4, 9)).astype(np.int8)
        pieces.extend([finger, linker])
    codes = np.concatenate(pieces)
    return Sequence(codes, PROTEIN, id="zf-synth", description="synthetic C2H2 array")


def main() -> None:
    protein = build_protein()
    print(f"{protein.id}: {len(protein)} aa, expecting ~6 diverged C2H2 fingers\n")

    result = find_repeats(
        protein,
        top_alignments=12,
        gaps=GapPenalties(8, 1),
        max_gap=3,
        min_copy_length=8,
    )

    print("repeat families found:")
    for rep in result.repeats:
        spans = ", ".join(f"{s}..{e}" for s, e in rep.copies)
        print(
            f"  family {rep.family}: {rep.n_copies} copies "
            f"(~{rep.unit_length:.0f} aa, {rep.columns} conserved cols) at {spans}"
        )

    # Render the best top alignment like the paper's §2.1 figure.
    best = result.top_alignments[0]
    problem = AlignmentProblem(
        protein.codes[: best.r], protein.codes[best.r :], blosum62(), GapPenalties(8, 1)
    )
    matrix = full_matrix(problem)
    end_i, end_j = best.pairs[-1]
    path = traceback(problem, matrix, end_i, end_j - best.r)
    top, mid, bot = render_alignment(problem, path)
    print(f"\nbest top alignment (score {best.score:g}):")
    print(f"  {top}\n  {mid}\n  {bot}")

    # FASTA round trip: write the protein plus each detected copy.
    records = [protein]
    for rep in result.repeats:
        for idx, (s, e) in enumerate(rep.copies):
            records.append(
                Sequence(
                    protein.codes[s - 1 : e],
                    PROTEIN,
                    id=f"zf-synth/fam{rep.family}.copy{idx}",
                    description=f"residues {s}-{e}",
                )
            )
    buffer = io.StringIO()
    write_fasta(records, buffer)
    reread = read_fasta(io.StringIO(buffer.getvalue()))
    print(f"\nFASTA round trip: wrote {len(records)} records, reread {len(reread)}")
    print(buffer.getvalue().splitlines()[0])
    for line in buffer.getvalue().splitlines()[1:3]:
        print(line)


if __name__ == "__main__":
    main()
