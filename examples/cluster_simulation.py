#!/usr/bin/env python
"""Reproduce the paper's cluster study (Figure 8) on one machine.

Simulates the DAS-2 deployment — dual-Pentium III nodes, a sacrificed
master, Myrinet — with the discrete-event simulator.  The simulator
schedules the *real* algorithm (alignments are actually computed and
memoised), only time is modelled, using CPU rates calibrated from the
paper's own Table 2.

Two parts:

1. a processor sweep on a scaled pseudo-titin for several top-alignment
   targets (the six curves of Figure 8), and
2. the k=1 study at full titin scale (m = 34350), which reproduces the
   paper's 831x headline almost exactly.

Usage::

    python examples/cluster_simulation.py [length]
"""

import sys

from repro.scoring import GapPenalties, blosum62
from repro.sequences import pseudo_titin
from repro.simulate import (
    AlignmentOracle,
    ClusterConfig,
    ClusterSimulator,
    NetworkModel,
)
from repro.simulate.firstpass import simulate_first_pass


def sweep(length: int) -> None:
    seq = pseudo_titin(length, seed=1912)
    oracle = AlignmentOracle(seq, blosum62(), GapPenalties(8, 1))
    base = ClusterSimulator(
        oracle,
        ClusterConfig(processors=1, tier="conventional", dedicated_master=False),
    )
    print(f"scaled sweep: pseudo-titin {length} aa, speed improvement over the")
    print("sequential conventional implementation (simulated DAS-2):\n")
    processors = (2, 4, 8, 16, 32, 64, 128)
    print("  k \\ P " + "".join(f"{p:>8}" for p in processors))
    for k in (1, 2, 5, 10, 25):
        baseline = base.run(k).makespan
        row = []
        for p in processors:
            sim = ClusterSimulator(oracle, ClusterConfig(processors=p, tier="sse"))
            row.append(baseline / sim.run(k).makespan)
        print(f"  {k:>4}  " + "".join(f"{s:>8.0f}" for s in row))
    print(
        "\n(shape as in Figure 8: the first top alignment scales best;"
        "\n more top alignments -> less parallelism between acceptances)"
    )


def titin_headline() -> None:
    m = 34350
    network = NetworkModel()
    conv = simulate_first_pass(
        m, ClusterConfig(processors=1, tier="conventional", dedicated_master=False)
    )
    sse = simulate_first_pass(
        m, ClusterConfig(processors=1, tier="sse", dedicated_master=False)
    )
    par = simulate_first_pass(
        m, ClusterConfig(processors=128, tier="sse", network=network)
    )
    vs_conv = conv.makespan / par.makespan
    vs_sse = sse.makespan / par.makespan
    print(f"\nfull-titin (m={m}) first top alignment, 128 simulated CPUs:")
    print(f"  sequential conventional: {conv.makespan / 3600:8.1f} h")
    print(f"  one-CPU SSE:             {sse.makespan / 3600:8.1f} h")
    print(f"  64 dual-CPU nodes:       {par.makespan:8.1f} s")
    print(f"  improvement vs conventional: {vs_conv:6.0f}   (paper: 831)")
    print(f"  improvement vs SSE:          {vs_sse:6.1f}  (paper: 123)")
    print(f"  parallel efficiency:         {vs_sse / 127:6.1%}  (paper: 96.1%)")
    print(
        f"  peak slave send rate:        "
        f"{network.peak_endpoint_rate(par.makespan) / 1024:6.1f} KB/s "
        "(paper: up to 64 KB/s)"
    )


if __name__ == "__main__":
    sweep(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
    titin_headline()
