#!/usr/bin/env python
"""Pathological tandem repeats: a Huntington-style CAG expansion.

The paper's introduction notes that "pathologically repeated fragments
are also known to play a role in serious diseases like Huntington's" —
where the number of CAG codon repeats in the HTT gene determines
disease onset (<27 normal, >39 pathogenic).  This example builds a
synthetic exon-like DNA fragment around a CAG tract, then walks the
whole toolchain:

* dot plot of the self-similarity,
* top alignments and delineated copies,
* unit-length selection (the §6 "AAC question": is the tract CAG x n,
  CAGCAG x n/2, ...?),
* tract phasing and consensus,
* significance against a shuffle null.

Usage::

    python examples/huntington_cag.py [n_repeats]
"""

import sys

import numpy as np

from repro import find_repeats
from repro.core import (
    find_top_alignments,
    phase_tandem,
    render_dotplot,
    score_pvalue,
    select_unit_length,
)
from repro.scoring import GapPenalties, match_mismatch
from repro.sequences import DNA, Sequence


def build_fragment(n_repeats: int, seed: int = 42) -> tuple[Sequence, int, int]:
    """Flanking sequence + CAG tract + flanking sequence.

    Returns the fragment and the tract's 1-based inclusive interval.
    """
    rng = np.random.default_rng(seed)
    flank5 = "".join("ACGT"[i] for i in rng.integers(0, 4, 40))
    flank3 = "".join("ACGT"[i] for i in rng.integers(0, 4, 40))
    tract = "CAG" * n_repeats
    seq = Sequence(flank5 + tract + flank3, DNA, id=f"htt-like-{n_repeats}xCAG")
    return seq, len(flank5) + 1, len(flank5) + len(tract)


def main(n_repeats: int = 21) -> None:
    seq, tract_start, tract_end = build_fragment(n_repeats)
    exchange = match_mismatch(DNA, 2.0, -1.0)
    gaps = GapPenalties(2.0, 1.0)
    print(f"{seq.id}: {len(seq)} nt, CAG tract at {tract_start}..{tract_end}")
    status = "normal" if n_repeats < 27 else "pathogenic" if n_repeats > 39 else "intermediate"
    print(f"{n_repeats} CAG repeats -> clinically {status}\n")

    tops, _ = find_top_alignments(seq, 4, exchange, gaps)
    print(render_dotplot(seq, tops, word=3, max_size=50))

    result = find_repeats(seq, top_alignments=8, exchange=exchange, gaps=gaps)
    print("\ndetected repeat families:")
    for rep in result.repeats:
        lo = min(s for s, _ in rep.copies)
        hi = max(e for _, e in rep.copies)
        print(
            f"  family {rep.family}: {rep.n_copies} copies spanning {lo}..{hi} "
            f"(truth: {tract_start}..{tract_end})"
        )

    # The §6 question: what is the repeat unit of the tract?
    tract = seq[tract_start - 1 : tract_end]
    choice = select_unit_length(tract)
    print(
        f"\nunit selection over the tract: unit={choice.unit_length} "
        f"({choice.copies} copies, identity {choice.identity:.0%}) "
        f"-> {'CAG' if choice.unit_length == 3 else '??'}"
    )
    offset, identity = phase_tandem(seq[tract_start - 4 : tract_end], 3)
    print(f"tract phasing with 3 nt units: offset {offset}, identity {identity:.0%}")

    score, pvalue, null = score_pvalue(seq, exchange, gaps, shuffles=20, seed=7)
    print(
        f"\nsignificance: best self-alignment scores {score:g}; shuffle null "
        f"mean {null.scores.mean():.1f} -> Gumbel p = {pvalue:.2g}"
    )
    verdict = "significant repeat expansion" if pvalue < 0.01 else "background"
    print(f"verdict: {verdict}")

    # The protein view: the CAG tract translates to poly-glutamine, the
    # actual pathogenic product in Huntington's disease.
    from repro.sequences import mask_low_complexity
    from repro.sequences.translate import translate

    frame = (tract_start - 1) % 3  # put the tract in frame
    protein = translate(seq, frame=frame)
    print(f"\ntranslated (frame {frame}): {len(protein)} aa")
    best, current = 0, 0  # longest poly-Q run
    for aa in protein.text:
        current = current + 1 if aa == "Q" else 0
        best = max(best, current)
    print(f"longest poly-Q run: {best} residues (expected ~{n_repeats})")
    masked = mask_low_complexity(protein, window=10, threshold=1.2)
    n_masked = masked.text.count("X")
    print(
        f"low-complexity masking flags {n_masked} residues — poly-Q is the "
        "textbook case of a repeat that is real biology yet must be masked "
        "in database searches"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 21)
