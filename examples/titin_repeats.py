#!/usr/bin/env python
"""Scan a titin-like protein for internal repeats — the paper's flagship
workload.

Human titin (34 350 aa) is the longest known protein and is built from
hundreds of heavily diverged ~95-residue Ig/fn3 domains; processing it
is what motivated the million-fold speedup.  This example scans a
scaled pseudo-titin, reports the repeat architecture, and contrasts the
new algorithm's work against the old quartic baseline.

Usage::

    python examples/titin_repeats.py [length] [top_alignments]
"""

import sys
import time

from repro import find_repeats, pseudo_titin
from repro.core import old_find_top_alignments
from repro.scoring import GapPenalties, blosum62


def main(length: int = 400, k: int = 15) -> None:
    seq = pseudo_titin(length, seed=1912)
    gaps = GapPenalties(8, 1)
    print(f"pseudo-titin: {length} aa of diverged ~95-residue domains")

    start = time.perf_counter()
    result = find_repeats(seq, top_alignments=k, gaps=gaps, max_gap=2)
    elapsed = time.perf_counter() - start

    print(f"\nnew algorithm: {k} top alignments in {elapsed:.2f} s")
    print(
        f"  alignments computed: {result.stats.alignments} "
        f"({result.stats.realignments} realignments; a full-rescan "
        f"strategy would need {(k - 1) * (length - 1)})"
    )
    print(f"  matrix cells evaluated: {result.stats.cells:,}")

    print("\ntop alignments (score, prefix span ~ suffix span):")
    for aln in result.top_alignments[:8]:
        p0, p1 = aln.prefix_interval
        s0, s1 = aln.suffix_interval
        print(f"  #{aln.index:<2d} score {aln.score:>6g}  {p0:>4}-{p1:<4} ~ {s0:>4}-{s1:<4}")
    if len(result.top_alignments) > 8:
        print(f"  ... and {len(result.top_alignments) - 8} more")

    print("\ndelineated repeat families:")
    for rep in result.repeats:
        spans = ", ".join(f"{s}..{e}" for s, e in rep.copies[:6])
        more = "" if rep.n_copies <= 6 else f", ... ({rep.n_copies} copies total)"
        print(
            f"  family {rep.family}: {rep.n_copies} copies, "
            f"~{rep.unit_length:.0f} aa units, {rep.columns} conserved columns: "
            f"{spans}{more}"
        )

    # Contrast with the old algorithm on a smaller prefix (it is quartic).
    small = pseudo_titin(min(length, 200), seed=1912)
    t0 = time.perf_counter()
    _, old_stats = old_find_top_alignments(small, 8, blosum62(), gaps)
    t_old = time.perf_counter() - t0
    t0 = time.perf_counter()
    small_result = find_repeats(small, top_alignments=8, gaps=gaps)
    t_new = time.perf_counter() - t0
    print(
        f"\nold vs new on a {len(small)}-aa prefix (k=8): "
        f"{t_old:.2f} s vs {t_new:.2f} s "
        f"({t_old / t_new:.1f}x, alignments {old_stats.alignments} vs "
        f"{small_result.stats.alignments})"
    )


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 400,
        int(sys.argv[2]) if len(sys.argv) > 2 else 15,
    )
