#!/usr/bin/env python
"""Annotation smoke test: scan -> artifacts offline, report endpoint live.

Two phases:

**Offline drill** — seed a small repetitive database, ``repro scan
--json``, then ``repro annotate`` the saved document (both as real
subprocesses) and check the artifact contracts:

* the GFF3 track passes the in-repo validator and its ``repeat_unit``
  spans round-trip the scan's copy coordinates exactly;
* the profile JSON satisfies the weighted-sum identity — mean window
  depths times window widths add up to the total copy residue count;
* the HTML report is one self-contained file: zero ``http(s)``
  references, no ``<script src>``, no ``<link>``.

**Service drill** — ``repro serve --tenants`` on an ephemeral port:
the owning tenant fetches ``GET /jobs/<id>/report`` in all three
formats (200 with the right content types); a *different* tenant gets
``403`` on the same URL; ``/metrics`` carries ``repro_annot_*``
families.

Exits non-zero on any failure, so CI can run it directly::

    python examples/annot_smoke.py --artifact-dir annot-artifacts
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.annot import validate_gff3
from repro.sequences import Sequence, write_fasta
from repro.sequences.workloads import RepeatSpec, implant_repeats

TENANTS = {
    "tenants": {
        "owner": {"api_key": "smoke-owner-key"},
        "stranger": {"api_key": "smoke-stranger-key"},
    }
}


def _seed_database(path: Path) -> None:
    records = [
        implant_repeats(
            160,
            RepeatSpec(unit_length=24, copies=4, substitution_rate=0.1),
            seed=7 + i,
            id=f"rep{i:02d}",
        ).sequence
        for i in range(3)
    ]
    records.append(Sequence("ACDEFGHIKLMNPQRSTVWY" * 3, id="plain"))
    write_fasta(records, path)


def _run_cli(args: list[str], log_path: Path) -> None:
    completed = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    log_path.write_text(completed.stdout + completed.stderr, encoding="utf-8")
    if completed.returncode != 0:
        raise RuntimeError(
            f"repro {' '.join(args)} exited {completed.returncode}:\n"
            f"{completed.stdout}{completed.stderr}"
        )


def _spawn(cmd: list[str], log_path: Path) -> subprocess.Popen:
    log = open(log_path, "w")  # noqa: SIM115 - lives as long as the process
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *cmd],
        stdout=log,
        stderr=subprocess.STDOUT,
        text=True,
        env=dict(os.environ),
    )


def _await_banner(proc: subprocess.Popen, log_path: Path, banner: str) -> str:
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        text = log_path.read_text() if log_path.exists() else ""
        for line in text.splitlines():
            if banner in line:
                return line.split(banner, 1)[1].split()[0]
        if proc.poll() is not None:
            raise RuntimeError(f"process exited {proc.returncode}: {text}")
        time.sleep(0.1)
    proc.kill()
    raise RuntimeError(f"no {banner!r} banner in {log_path}")


def _get(url: str, path: str, key: str | None = None):
    request = urllib.request.Request(f"{url}{path}")
    if key:
        request.add_header("Authorization", f"Bearer {key}")
    with urllib.request.urlopen(request, timeout=30) as response:
        return (
            response.status,
            response.headers.get("Content-Type") or "",
            response.read().decode("utf-8"),
        )


def _post_json(url: str, path: str, payload: dict, key: str) -> dict:
    request = urllib.request.Request(
        f"{url}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={
            "Content-Type": "application/json",
            "Authorization": f"Bearer {key}",
        },
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


def check_gff3(gff_path: Path, scan_path: Path) -> None:
    text = gff_path.read_text(encoding="utf-8")
    errors = validate_gff3(text)
    assert not errors, "GFF3 validation failed:\n" + "\n".join(errors)
    # Every repeat_unit span must be one of the scan's copy coordinates.
    document = json.loads(scan_path.read_text(encoding="utf-8"))
    copy_spans = {
        (record["id"], start, end)
        for record in document["records"]
        if record["result"]
        for repeat in record["result"]["repeats"]
        for start, end in repeat["copies"]
    }
    gff_spans = set()
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        cols = line.split("\t")
        if cols[2] == "repeat_unit":
            gff_spans.add((cols[0], int(cols[3]), int(cols[4])))
    assert copy_spans, "seeded database produced no repeat copies"
    assert gff_spans == copy_spans, (
        f"GFF3 repeat_unit spans diverge from the scan document: "
        f"{gff_spans ^ copy_spans}"
    )
    print(
        f"gff3: valid, all {len(gff_spans)} repeat_unit spans "
        "round-trip the scan"
    )


def check_profile(profile_path: Path) -> None:
    payload = json.loads(profile_path.read_text(encoding="utf-8"))
    weighted = 0.0
    for record in payload["sequences"]:
        if "values" not in record:
            continue
        window, length = record["window"], record["length"]
        for i, value in enumerate(record["values"]):
            weighted += value * min(window, length - i * window)
    declared = payload["total_copy_residues"]
    assert abs(weighted - declared) < 1e-6, (weighted, declared)
    assert declared > 0, "seeded repeats produced an empty profile"
    print(
        f"profile: weighted window sums == {declared} copy residues "
        f"({len(payload['sequences'])} sequences)"
    )


def check_html(html_path: Path) -> None:
    text = html_path.read_text(encoding="utf-8")
    for needle in ("http://", "https://", "<script src", "<link"):
        assert needle not in text, f"HTML report carries {needle!r}"
    assert text.startswith("<!DOCTYPE html>")
    assert "<svg" in text and "<details>" in text
    print(f"html: self-contained ({len(text)} bytes, no external references)")


def phase_offline(work: Path, artifact_dir: Path) -> None:
    fasta = work / "db.fasta"
    _seed_database(fasta)
    scan_json = artifact_dir / "scan.json"
    _run_cli(
        ["scan", str(fasta), "--json", str(scan_json), "-k", "6"],
        artifact_dir / "scan.log",
    )
    prefix = artifact_dir / "annot"
    _run_cli(
        ["annotate", str(scan_json), "--prefix", str(prefix)],
        artifact_dir / "annotate.log",
    )
    check_gff3(Path(f"{prefix}.gff3"), scan_json)
    check_profile(Path(f"{prefix}.profile.json"))
    check_html(Path(f"{prefix}.html"))


def phase_service(work: Path, artifact_dir: Path) -> None:
    tenants_file = work / "tenants.json"
    tenants_file.write_text(json.dumps(TENANTS), encoding="utf-8")
    serve_log = artifact_dir / "serve.log"
    proc = _spawn(
        [
            "serve",
            "--port", "0",
            "--workers", "1",
            "--data-dir", str(work / "data"),
            "--tenants", str(tenants_file),
        ],
        serve_log,
    )
    try:
        url = _await_banner(proc, serve_log, "repro service listening on")
        workload = implant_repeats(
            140,
            RepeatSpec(unit_length=20, copies=4, substitution_rate=0.1),
            seed=41,
        )
        job = _post_json(
            url,
            "/jobs",
            {
                "sequence": workload.sequence.text,
                "seq_id": "smoke-rep",
                "top_alignments": 6,
            },
            "smoke-owner-key",
        )
        job_id = job["id"]
        deadline = time.monotonic() + 120
        while True:
            _, _, body = _get(url, f"/jobs/{job_id}", "smoke-owner-key")
            state = json.loads(body)["state"]
            if state == "done":
                break
            assert state in ("queued", "running"), state
            assert time.monotonic() < deadline, "job never finished"
            time.sleep(0.2)

        expectations = {
            "gff3": "text/plain",
            "json": "application/json",
            "html": "text/html",
        }
        for fmt, content_type in expectations.items():
            status, ctype, body = _get(
                url, f"/jobs/{job_id}/report?format={fmt}", "smoke-owner-key"
            )
            assert status == 200, (fmt, status)
            assert ctype.startswith(content_type), (fmt, ctype)
            (artifact_dir / f"report.{fmt}").write_text(body, encoding="utf-8")
        assert validate_gff3((artifact_dir / "report.gff3").read_text()) == []
        assert "http" not in (artifact_dir / "report.html").read_text()
        print(f"service: owner fetched all 3 report formats for {job_id}")

        try:
            _get(url, f"/jobs/{job_id}/report", "smoke-stranger-key")
        except urllib.error.HTTPError as exc:
            assert exc.code == 403, exc.code
        else:
            raise AssertionError("stranger's report request was not refused")
        print("service: non-owning tenant refused with 403")

        _, _, metrics = _get(url, "/metrics")
        assert 'repro_annot_reports_total{format="gff3"}' in metrics
        assert "repro_annot_render_seconds" in metrics
        assert "repro_annot_reports_denied_total 1" in metrics
        print("service: repro_annot_* metric families present")
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
    assert proc.returncode == 0, f"service exited {proc.returncode}"
    print("service shut down cleanly")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--artifact-dir",
        default=None,
        help="directory for emitted artifacts and logs (CI upload)",
    )
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="repro-annot-smoke-") as tmp:
        work = Path(tmp)
        artifact_dir = (
            Path(args.artifact_dir) if args.artifact_dir else work / "artifacts"
        )
        artifact_dir.mkdir(parents=True, exist_ok=True)
        phase_offline(work, artifact_dir)
        phase_service(work, artifact_dir)
    print("annot smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
