#!/usr/bin/env python
"""Service smoke test: serve, submit, cache-hit, graceful shutdown.

Starts ``repro serve`` as a real subprocess on an ephemeral port,
submits two jobs — the second a duplicate of the first — and asserts:

* both jobs reach ``done`` and their results are fetchable;
* the duplicate was served from the content-addressed cache (born
  done, never queued) while the workers' alignment counters did not
  move — zero realignment work;
* the service result matches an in-process run of the same spec
  through the library bit-for-bit (top alignments and repeat families);
* SIGTERM shuts the service down cleanly (exit code 0, workers
  drained).

Exits non-zero on any failure, so CI can run it directly::

    python examples/service_smoke.py
"""

import json
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.sequences import Sequence, pseudo_titin
from repro.service import JobSpec, ServiceClient
from repro.service.workers import build_finder

K = 6
SEQUENCE = pseudo_titin(90, seed=11)


def start_service(data_dir: str) -> tuple[subprocess.Popen, str]:
    """Launch ``repro serve`` on an ephemeral port; returns (proc, url)."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--data-dir",
            data_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    # The first line announces the bound address:
    #   repro service listening on http://127.0.0.1:PORT (...)
    line = proc.stdout.readline()
    if "listening on" not in line:
        proc.kill()
        raise RuntimeError(f"unexpected service banner: {line!r}")
    url = line.split("listening on", 1)[1].split()[0]
    deadline = time.monotonic() + 15
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(f"{url}/healthz", timeout=2) as resp:
                if json.load(resp).get("ok"):
                    return proc, url
        except OSError:
            time.sleep(0.1)
    proc.kill()
    raise RuntimeError("service never became healthy")


def main() -> int:
    spec = {"sequence": SEQUENCE.text, "seq_id": SEQUENCE.id, "top_alignments": K}
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as tmp:
        proc, url = start_service(str(Path(tmp) / "data"))
        try:
            client = ServiceClient(url, timeout=30)

            first = client.submit(spec)
            assert not first["from_cache"], "fresh submission must not hit the cache"
            done = client.wait(first["id"], timeout=120)
            assert done["state"] == "done", done
            print(f"job 1: {done['id']} done, found={done['found']}")

            aligned = client.stats()["alignments_total"]
            assert aligned > 0, "workers reported no alignment work"

            duplicate = client.submit(spec)
            assert duplicate["from_cache"], "duplicate must be served from cache"
            assert duplicate["state"] == "done"
            assert duplicate["digest"] == first["digest"]
            assert client.stats()["alignments_total"] == aligned, (
                "cache hit must do zero alignment work"
            )
            print(f"job 2: {duplicate['id']} served from cache, zero new alignments")

            events = [e["event"] for e in client.events(first["id"])]
            assert events[0] == "queued" and events[-1] == "done", events
            assert "progress" in events, events

            payload = client.result(first["digest"])
            # The same spec, executed in-process through the library.
            expected = build_finder(JobSpec.from_dict(spec)).find(
                Sequence(SEQUENCE.text, "protein", id=SEQUENCE.id)
            )
            got = [(a["r"], a["score"]) for a in payload["top_alignments"]]
            want = [(a.r, a.score) for a in expected.top_alignments]
            assert got == want, f"service result diverged: {got} != {want}"
            got_families = [tuple(map(tuple, r["copies"])) for r in payload["repeats"]]
            want_families = [tuple(r.copies) for r in expected.repeats]
            assert got_families == want_families, "repeat families diverged"
            print(f"results identical to the in-process library run ({K} alignments)")
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                code = proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
        tail = proc.stdout.read()
        assert code == 0, f"service exited {code}: {tail}"
        assert "repro service stopped" in tail, tail
        print("service shut down cleanly")
    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
