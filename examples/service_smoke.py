#!/usr/bin/env python
"""Service smoke test: serve, submit, cache-hit, graceful shutdown.

Starts ``repro serve`` as a real subprocess on an ephemeral port,
submits two jobs — the second a duplicate of the first — and asserts:

* both jobs reach ``done`` and their results are fetchable;
* the duplicate was served from the content-addressed cache (born
  done, never queued) while the workers' alignment counters did not
  move — zero realignment work;
* the service result matches an in-process run of the same spec
  through the library bit-for-bit (top alignments and repeat families);
* ``GET /metrics`` serves valid Prometheus text exposition covering
  queue depth, cache hits and job latency (``--metrics-out`` saves the
  parsed samples as a JSON artifact for CI);
* SIGTERM shuts the service down cleanly (exit code 0, workers
  drained).

Exits non-zero on any failure, so CI can run it directly::

    python examples/service_smoke.py
"""

import argparse
import json
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.sequences import Sequence, pseudo_titin
from repro.service import JobSpec, ServiceClient
from repro.service.workers import build_finder

K = 6
SEQUENCE = pseudo_titin(90, seed=11)


def start_service(data_dir: str) -> tuple[subprocess.Popen, str]:
    """Launch ``repro serve`` on an ephemeral port; returns (proc, url)."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--data-dir",
            data_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    # The first line announces the bound address:
    #   repro service listening on http://127.0.0.1:PORT (...)
    line = proc.stdout.readline()
    if "listening on" not in line:
        proc.kill()
        raise RuntimeError(f"unexpected service banner: {line!r}")
    url = line.split("listening on", 1)[1].split()[0]
    deadline = time.monotonic() + 15
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(f"{url}/healthz", timeout=2) as resp:
                if json.load(resp).get("ok"):
                    return proc, url
        except OSError:
            time.sleep(0.1)
    proc.kill()
    raise RuntimeError("service never became healthy")


#: One Prometheus sample line: ``name{labels} value`` with optional labels.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (?:[+-]?(?:Inf|NaN|[0-9.eE+-]+))$"
)

#: Families /metrics must cover (the ISSUE's acceptance list).
_REQUIRED_FAMILIES = (
    "repro_service_queue_depth",
    "repro_service_cache_hits_total",
    "repro_service_cache_misses_total",
    "repro_service_job_seconds_bucket",
    "repro_service_job_seconds_count",
    "repro_service_workers_alive",
    "repro_http_requests_total",
)


def check_metrics(url: str, metrics_out: str | None) -> None:
    """Scrape /metrics, validate the exposition, optionally save a JSON artifact."""
    with urllib.request.urlopen(f"{url}/metrics", timeout=10) as resp:
        content_type = resp.headers.get("Content-Type", "")
        text = resp.read().decode("utf-8")
    assert content_type.startswith("text/plain"), content_type
    assert "version=0.0.4" in content_type, content_type
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _SAMPLE_RE.match(line), f"invalid exposition line: {line!r}"
        family = line.split("{", 1)[0].split(" ", 1)[0]
        samples[family] = float(line.rsplit(" ", 1)[1])
    missing = [f for f in _REQUIRED_FAMILIES if f not in samples]
    assert not missing, f"/metrics is missing families: {missing}"
    assert samples["repro_service_workers_alive"] == 2, "expected 2 live workers"
    assert samples["repro_service_job_seconds_count"] >= 1, (
        "at least one computed job must land in the latency histogram"
    )
    print(f"metrics: {len(samples)} families, Prometheus exposition valid")
    if metrics_out:
        Path(metrics_out).write_text(
            json.dumps({"content_type": content_type, "samples": samples}, indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(f"metrics artifact written to {metrics_out}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the scraped /metrics samples to this JSON file",
    )
    args = parser.parse_args(argv)
    spec = {"sequence": SEQUENCE.text, "seq_id": SEQUENCE.id, "top_alignments": K}
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as tmp:
        proc, url = start_service(str(Path(tmp) / "data"))
        try:
            client = ServiceClient(url, timeout=30)

            first = client.submit(spec)
            assert not first["from_cache"], "fresh submission must not hit the cache"
            done = client.wait(first["id"], timeout=120)
            assert done["state"] == "done", done
            print(f"job 1: {done['id']} done, found={done['found']}")

            aligned = client.stats()["alignments_total"]
            assert aligned > 0, "workers reported no alignment work"

            duplicate = client.submit(spec)
            assert duplicate["from_cache"], "duplicate must be served from cache"
            assert duplicate["state"] == "done"
            assert duplicate["digest"] == first["digest"]
            assert client.stats()["alignments_total"] == aligned, (
                "cache hit must do zero alignment work"
            )
            print(f"job 2: {duplicate['id']} served from cache, zero new alignments")

            events = [e["event"] for e in client.events(first["id"])]
            assert events[0] == "queued" and events[-1] == "done", events
            assert "progress" in events, events

            payload = client.result(first["digest"])
            # The same spec, executed in-process through the library.
            expected = build_finder(JobSpec.from_dict(spec)).find(
                Sequence(SEQUENCE.text, "protein", id=SEQUENCE.id)
            )
            got = [(a["r"], a["score"]) for a in payload["top_alignments"]]
            want = [(a.r, a.score) for a in expected.top_alignments]
            assert got == want, f"service result diverged: {got} != {want}"
            got_families = [tuple(map(tuple, r["copies"])) for r in payload["repeats"]]
            want_families = [tuple(r.copies) for r in expected.repeats]
            assert got_families == want_families, "repeat families diverged"
            print(f"results identical to the in-process library run ({K} alignments)")

            check_metrics(url, args.metrics_out)
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                code = proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
        tail = proc.stdout.read()
        assert code == 0, f"service exited {code}: {tail}"
        assert "repro service stopped" in tail, tail
        print("service shut down cleanly")
    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
