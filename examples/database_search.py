#!/usr/bin/env python
"""Batched database search — the paper's §6 generalisation in action.

"We claim that the way we perform parallel alignment using multimedia
extensions is also applicable to other application areas that require
many alignments" — here: a ParAlign/Smith-Waterman-style database
search.  A zinc-finger query is scored against a synthetic protein
database; matrices are batched through the lane engine in groups of
similar size, and the one-at-a-time engine is timed for comparison.

Usage::

    python examples/database_search.py [db_size]
"""

import sys
import time

import numpy as np

from repro.align import AlignmentProblem
from repro.align.search import best_local_score, search_database
from repro.scoring import GapPenalties, blosum62
from repro.sequences import PROTEIN, Sequence, mutate, random_sequence


def build_database(size: int, query: Sequence, seed: int = 17):
    """Random proteins; every fifth one carries a diverged query motif."""
    rng = np.random.default_rng(seed)
    db = []
    planted = []
    for i in range(size):
        length = int(rng.integers(50, 90))
        body = random_sequence(length, PROTEIN, seed=1000 + i).codes.copy()
        if i % 5 == 0:
            motif = mutate(query.codes, PROTEIN, substitution_rate=0.2, rng=rng)
            at = int(rng.integers(0, max(1, length - motif.size)))
            body[at : at + motif.size] = motif[: length - at][: motif.size]
            planted.append(f"db{i:03d}")
        db.append(Sequence(body, PROTEIN, id=f"db{i:03d}"))
    return db, set(planted)


def main(db_size: int = 40) -> None:
    query = Sequence("HQRTHTGEKPYKCPECGKSFSQSSNLQKH", PROTEIN, id="zf-query")
    gaps = GapPenalties(8, 1)
    db, planted = build_database(db_size, query)
    print(f"query: {query.id} ({len(query)} aa); database: {db_size} proteins, "
          f"{len(planted)} with a planted motif\n")

    t0 = time.perf_counter()
    hits = search_database(query, db, blosum62(), gaps, lanes=8)
    t_batched = time.perf_counter() - t0

    t0 = time.perf_counter()
    singles = [
        best_local_score(AlignmentProblem(query.codes, s.codes, blosum62(), gaps))
        for s in db
    ]
    t_single = time.perf_counter() - t0
    assert [h.score for h in sorted(hits, key=lambda h: h.index)] == singles

    print("top hits:")
    print(f"  {'rank':>4} {'id':<8} {'len':>4} {'score':>6}  planted?")
    for rank, hit in enumerate(hits[:10], 1):
        mark = "yes" if hit.id in planted else ""
        print(f"  {rank:>4} {hit.id:<8} {hit.length:>4} {hit.score:>6g}  {mark}")

    recovered = sum(1 for h in hits[: len(planted)] if h.id in planted)
    print(f"\nplanted motifs in the top {len(planted)}: {recovered}/{len(planted)}")
    print(
        f"timing: batched lanes {t_batched * 1e3:.0f} ms vs "
        f"one-at-a-time {t_single * 1e3:.0f} ms "
        f"({t_single / t_batched:.1f}x from batching alone — identical scores)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40)
