#!/usr/bin/env python
"""Compare the alignment-engine tiers on this machine (Table 2, locally).

Times the four tiers of the reproduction on identical work and prints
a Table 2-style report:

* ``conventional`` — pure-Python scalar loop (the paper's non-SIMD
  baseline),
* ``vector``       — numpy row-vectorised, one matrix at a time,
* ``sse``          — 4 neighbouring matrices per lockstep int16 batch,
* ``sse2``         — 8 matrices per batch.

Also demonstrates that all tiers produce bit-identical scores.

Usage::

    python examples/engine_comparison.py [size]
"""

import sys

import numpy as np

from repro.align import AlignmentProblem, LanesEngine, get_engine
from repro.scoring import GapPenalties, blosum62
from repro.sequences import pseudo_titin
from repro.simulate import PENTIUM3, PENTIUM4, calibrate_local


def correctness_demo(size: int) -> None:
    seq = pseudo_titin(2 * size, seed=3)
    problem = AlignmentProblem(
        seq.codes[:size], seq.codes[size:], blosum62(), GapPenalties(8, 1)
    )
    rows = {
        name: get_engine(name).last_row(problem)
        for name in ("scalar", "vector", "striped", "lanes", "lanes-sse2")
    }
    reference = rows.pop("scalar")
    for name, row in rows.items():
        assert np.array_equal(row, reference), name
    print(
        f"correctness: all engines agree bit-for-bit on a "
        f"{size}x{size} BLOSUM62 matrix (best score {reference.max():g})\n"
    )


def timing_report(size: int) -> None:
    report = calibrate_local(size=size, scalar_size=max(size // 3, 60))
    print(f"tier           cells/s      vs conventional   (matrix side ~{size})")
    for tier in ("conventional", "vector", "sse", "sse2"):
        rate = report.model.rates[tier]
        print(
            f"  {tier:<12} {rate:>12,.0f}   {report.improvement(tier):>8.1f}x"
        )
    print(
        "\npaper (compiled C): SSE 6.9x on a Pentium III, 6.0x/9.8x (SSE/SSE2)"
        "\non a Pentium 4.  The CPython factors are far larger because the"
        "\nconventional tier pays interpreter overhead per matrix cell, while"
        "\nthe batched tiers amortise it across a whole row of lanes — the"
        "\nsame amortisation argument the paper makes for its superlinear"
        "\nSIMD speedups, exaggerated by the interpreter."
    )
    print(
        f"\ncalibrated paper models for the simulator:"
        f"\n  Pentium III: sse {PENTIUM3.improvement('sse'):.1f}x"
        f"\n  Pentium 4:   sse {PENTIUM4.improvement('sse'):.1f}x, "
        f"sse2 {PENTIUM4.improvement('sse2'):.1f}x"
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 240
    correctness_demo(min(size, 160))
    timing_report(size)
