"""Setup shim.

The pyproject.toml carries all metadata; this file exists so that
``python setup.py develop`` works on minimal offline environments whose
setuptools predates PEP 660 editable installs (no ``wheel`` package).
"""

from setuptools import setup

setup()
